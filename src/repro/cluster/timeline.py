"""Per-worker simulated clocks and activity records.

Engines charge modeled durations to workers under an activity kind
(``gpu``, ``cpu``, ``net_send``, ``net_recv``); the timeline records
the interval so Figure 13's utilization traces can be regenerated.
Barriers synchronise clocks (BSP layer boundaries, all-reduce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

GPU = "gpu"
CPU = "cpu"
NET_SEND = "net_send"
NET_RECV = "net_recv"
IDLE = "idle"

KINDS = (GPU, CPU, NET_SEND, NET_RECV, IDLE)


@dataclass(frozen=True)
class Interval:
    """One recorded activity: worker spent [start, end) doing ``kind``."""

    worker: int
    kind: str
    start: float
    end: float
    num_bytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Span:
    """A named logical period on one worker's row (serving lifecycle).

    Unlike an :class:`Interval`, a span does not charge time or occupy
    the clock -- it annotates a stretch of it (a request's life from
    arrival to reply, a micro-batch's dispatch window, a compute/fetch
    phase), so traces show *why* the underlying gpu/net intervals
    happened.  ``args`` carries free-form labels into the trace export.
    """

    worker: int
    name: str
    start: float
    end: float
    args: Optional[Dict[str, object]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Clocks + interval log for ``num_workers`` workers."""

    def __init__(self, num_workers: int, record: bool = True):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.clocks = np.zeros(num_workers, dtype=np.float64)
        self.record = record
        self.intervals: List[Interval] = []
        self.spans: List[Span] = []
        self.totals: Dict[str, np.ndarray] = {
            kind: np.zeros(num_workers) for kind in KINDS
        }

    # ------------------------------------------------------------------
    def now(self, worker: int) -> float:
        return float(self.clocks[worker])

    def advance(
        self, worker: int, kind: str, duration: float, num_bytes: int = 0
    ) -> None:
        """Charge ``duration`` seconds of ``kind`` to ``worker``."""
        if duration < 0:
            raise ValueError("cannot advance time backwards")
        if kind not in KINDS:
            raise ValueError(f"unknown activity kind {kind!r}")
        if duration == 0:
            return
        start = self.clocks[worker]
        self.clocks[worker] = start + duration
        self.totals[kind][worker] += duration
        if self.record:
            self.intervals.append(
                Interval(worker, kind, float(start), float(start + duration), num_bytes)
            )

    def advance_at_least_until(
        self, worker: int, time: float, record_idle: bool = False
    ) -> None:
        """Move a worker's clock forward to ``time``.

        With ``record_idle`` the gap is logged as an ``idle`` interval
        (a stall: waiting on a barrier, a timeout, a straggler); without
        it the gap is assumed covered by overlapped activity intervals
        the caller already recorded.
        """
        start = float(self.clocks[worker])
        if time <= start:
            return
        self.clocks[worker] = time
        if record_idle:
            self.totals[IDLE][worker] += time - start
            if self.record:
                self.intervals.append(Interval(worker, IDLE, start, float(time)))

    def record_interval(
        self,
        worker: int,
        kind: str,
        start: float,
        duration: float,
        num_bytes: int = 0,
    ) -> None:
        """Record an activity without advancing the clock.

        Used for overlapped activities (communication running while the
        GPU computes): the caller advances the clock once by the
        overlapped span, but both activities appear in the trace.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown activity kind {kind!r}")
        if duration <= 0:
            return
        self.totals[kind][worker] += duration
        if self.record:
            self.intervals.append(
                Interval(worker, kind, float(start), float(start + duration), num_bytes)
            )

    def record_span(
        self,
        worker: int,
        name: str,
        start: float,
        end: float,
        **args: object,
    ) -> None:
        """Annotate ``[start, end)`` on ``worker``'s row with ``name``.

        Spans never move clocks or totals; they exist purely for trace
        export (``repro.cluster.trace``) and debugging.  Recording is
        gated on ``self.record`` like intervals.
        """
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} not in 0..{self.num_workers - 1}")
        if end < start:
            raise ValueError(f"span must have end >= start, got [{start}, {end})")
        if self.record:
            self.spans.append(
                Span(worker, name, float(start), float(end), args or None)
            )

    def barrier(self, workers: Optional[Sequence[int]] = None) -> float:
        """Synchronise clocks to the max (BSP superstep boundary).

        Workers that arrive early have their wait logged as an ``idle``
        interval, so utilization traces show barrier stalls (straggler
        waits, retry timeouts) instead of silently losing them.
        """
        if workers is None:
            idx = np.arange(self.num_workers)
        else:
            idx = np.asarray(list(workers), dtype=np.int64)
        t = float(self.clocks[idx].max())
        for w in idx:
            self.advance_at_least_until(int(w), t, record_idle=True)
        return t

    @property
    def makespan(self) -> float:
        return float(self.clocks.max())

    # ------------------------------------------------------------------
    # Figure 13: utilization traces
    # ------------------------------------------------------------------
    def busy_fraction(
        self, kind: str, window: float, horizon: Optional[float] = None
    ) -> np.ndarray:
        """Average busy fraction of ``kind`` per window across workers.

        Returns an array of per-window utilizations in [0, 1] (averaged
        over workers), the quantity Figure 13(a)/(b) plots.
        """
        horizon = horizon or self.makespan
        if horizon <= 0:
            return np.zeros(0)
        num_windows = int(np.ceil(horizon / window))
        busy = np.zeros((self.num_workers, num_windows))
        for interval in self.intervals:
            if interval.kind != kind:
                continue
            self._splat(busy[interval.worker], interval, window, horizon)
        return busy.mean(axis=0) / window

    def bytes_per_window(
        self, window: float, horizon: Optional[float] = None
    ) -> np.ndarray:
        """Total received bytes per window (Figure 13(c)'s network trace)."""
        horizon = horizon or self.makespan
        if horizon <= 0:
            return np.zeros(0)
        num_windows = int(np.ceil(horizon / window))
        received = np.zeros(num_windows)
        for interval in self.intervals:
            if interval.kind != NET_RECV or interval.num_bytes == 0:
                continue
            # Spread the bytes across the windows the transfer spans.
            start = min(interval.start, horizon)
            end = min(interval.end, horizon)
            span = max(end - start, 1e-12)
            w0 = int(start / window)
            w1 = min(int(np.ceil(end / window)), num_windows)
            for w in range(w0, max(w1, w0 + 1)):
                lo = max(start, w * window)
                hi = min(end, (w + 1) * window)
                if hi > lo and w < num_windows:
                    received[w] += interval.num_bytes * (hi - lo) / span
        return received

    @staticmethod
    def _splat(row: np.ndarray, interval: Interval, window: float, horizon: float):
        """Distribute an interval's duration over the windows it spans."""
        start = min(interval.start, horizon)
        end = min(interval.end, horizon)
        w0 = int(start / window)
        w1 = min(int(np.ceil(end / window)), len(row))
        for w in range(w0, w1):
            lo = max(start, w * window)
            hi = min(end, (w + 1) * window)
            if hi > lo:
                row[w] += hi - lo

    def utilization_summary(self) -> Dict[str, float]:
        """Average busy fraction per kind over the whole run."""
        span = self.makespan
        if span <= 0:
            return {kind: 0.0 for kind in KINDS}
        return {
            kind: float(self.totals[kind].mean() / span) for kind in KINDS
        }
