"""Per-worker device memory accounting.

Engines register every resident tensor (features, cached dependency
closures, per-layer activations, edge tensors) against a budget; going
over raises :class:`OutOfMemoryError`, reproducing the paper's "OOM"
table entries.  Labels make the error actionable and let tests assert
*what* blew the budget.
"""

from __future__ import annotations

from typing import Dict


class OutOfMemoryError(RuntimeError):
    """Raised when a worker's resident bytes exceed its device budget."""

    def __init__(self, worker: int, requested: int, used: int, budget: int, label: str):
        self.worker = worker
        self.requested = requested
        self.used = used
        self.budget = budget
        self.label = label
        super().__init__(
            f"worker {worker}: allocating {requested} bytes for {label!r} "
            f"would exceed device memory ({used} used of {budget})"
        )


class MemoryTracker:
    """Tracks resident bytes per label for one worker."""

    def __init__(self, worker: int, budget_bytes: int):
        if budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.worker = worker
        self.budget_bytes = int(budget_bytes)
        self._used = 0
        self._peak = 0
        self._by_label: Dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def peak_bytes(self) -> int:
        return self._peak

    def fits(self, num_bytes: int) -> bool:
        """Whether ``num_bytes`` more would stay within the budget."""
        return self._used + int(num_bytes) <= self.budget_bytes

    def try_allocate(self, num_bytes: int, label: str) -> bool:
        """Like :meth:`allocate` but returns False instead of raising.

        Budget-sharing consumers (the historical-embedding cache versus
        DepCache closures) probe with this instead of catching
        :class:`OutOfMemoryError` in a loop.
        """
        if not self.fits(num_bytes):
            return False
        self.allocate(num_bytes, label)
        return True

    def allocate(self, num_bytes: int, label: str) -> None:
        """Reserve ``num_bytes``; raises :class:`OutOfMemoryError` if over."""
        num_bytes = int(num_bytes)
        if num_bytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if self._used + num_bytes > self.budget_bytes:
            raise OutOfMemoryError(
                self.worker, num_bytes, self._used, self.budget_bytes, label
            )
        self._used += num_bytes
        self._peak = max(self._peak, self._used)
        self._by_label[label] = self._by_label.get(label, 0) + num_bytes

    def snapshot(self) -> tuple:
        """Capture (used, per-label) state for a later :meth:`restore`.

        The four-way greedy tentatively runs a layer's three-way pass,
        then rolls the allocations back wholesale when the layer flips
        to tensor parallelism; peak tracking is deliberately left
        untouched (the tentative allocations really were resident).
        """
        return (self._used, dict(self._by_label))

    def restore(self, state: tuple) -> None:
        """Roll back to a :meth:`snapshot` taken on this tracker."""
        used, by_label = state
        self._used = int(used)
        self._by_label = dict(by_label)

    def free(self, num_bytes: int, label: str) -> None:
        """Release ``num_bytes`` previously allocated under ``label``."""
        num_bytes = int(num_bytes)
        held = self._by_label.get(label, 0)
        if num_bytes > held:
            raise ValueError(
                f"freeing {num_bytes} bytes of {label!r} but only {held} held"
            )
        self._by_label[label] = held - num_bytes
        self._used -= num_bytes

    def free_all(self, label: str) -> None:
        """Release everything held under ``label``."""
        held = self._by_label.pop(label, 0)
        self._used -= held

    def breakdown(self) -> Dict[str, int]:
        return {k: v for k, v in self._by_label.items() if v}

    def reset(self) -> None:
        self._used = 0
        self._by_label.clear()
