"""Human-readable formatting for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_seconds(seconds: float) -> str:
    """Compact duration: us / ms / s as appropriate."""
    if seconds != seconds:  # NaN
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"


def format_bytes(num_bytes: float) -> str:
    """Compact byte count: B / KB / MB / GB."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GB"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table (benchmark output)."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [
        [h] for h in headers
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
