"""Machine-readable output helpers shared by the CLI and benchmarks.

Every command/benchmark that supports ``--json PATH`` funnels its result
dictionary through :func:`write_json`, so the serialisation rules live
in one place: NaN (the out-of-memory marker) becomes the string
``"OOM"`` (JSON has no NaN), numpy scalars/arrays decay to plain Python
numbers/lists, and tuples become lists.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

import numpy as np


def jsonable(value):
    """A JSON-serialisable copy of ``value``; NaN -> ``"OOM"``."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        value = float(value)
    if isinstance(value, float) and value != value:
        return "OOM"
    return value


def write_json(path: Optional[str], payload: Dict, quiet: bool = False) -> None:
    """Write ``payload`` to ``path`` (no-op when ``path`` is falsy)."""
    if not path:
        return
    with open(path, "w") as fh:
        json.dump(jsonable(payload), fh, indent=2)
    if not quiet:
        print(f"json written to {path}")
