"""Small shared utilities."""

from repro.utils.formatting import format_seconds, format_bytes, render_table
from repro.utils.jsonio import jsonable, write_json
from repro.utils.rng import derive_rng, derive_seed_sequence, derive_uniform

__all__ = [
    "format_seconds",
    "format_bytes",
    "render_table",
    "jsonable",
    "write_json",
    "derive_rng",
    "derive_seed_sequence",
    "derive_uniform",
]
