"""Small shared utilities."""

from repro.utils.formatting import format_seconds, format_bytes, render_table

__all__ = ["format_seconds", "format_bytes", "render_table"]
