"""Consistent seed derivation for every random decision in the system.

Workload generation, fault-schedule draws, and retry-backoff jitter all
need the same property: a run is a pure function of its seeds, and two
modules drawing from the same base seed must not accidentally share (or
collide on) a stream.  ``derive_rng`` builds a ``numpy`` generator from
a base seed plus an arbitrary *stream path* of ints and strings, so
call sites spell out what the draw is for::

    rng = derive_rng(seed, "workload", "arrivals")
    u = derive_uniform(seed, phase, src, dst, attempt)

String components are hashed with CRC-32 (stable across processes and
Python versions, unlike ``hash``); integer components pass through with
the sign bit masked off.  ``derive_uniform(seed, a, b, ...)`` with
all-integer components is bit-identical to the historical
``np.random.default_rng([seed & 0x7FFFFFFF, a, b, ...]).random()``
formula the fault injector used before this helper existed, so probed
traces and chaos runs replay unchanged.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

_MASK = 0x7FFFFFFF

StreamPart = Union[int, str]


def _component(part: StreamPart) -> int:
    """One non-negative 31-bit integer per stream-path component."""
    if isinstance(part, str):
        return zlib.crc32(part.encode("utf-8")) & _MASK
    return int(part) & _MASK


def derive_seed_sequence(seed: int, *stream: StreamPart) -> list:
    """The integer seed list feeding ``np.random.default_rng``."""
    return [int(seed) & _MASK] + [_component(part) for part in stream]


def derive_rng(seed: int, *stream: StreamPart) -> np.random.Generator:
    """A generator for one named stream of a seeded run."""
    return np.random.default_rng(derive_seed_sequence(seed, *stream))


def derive_uniform(seed: int, *stream: StreamPart) -> float:
    """One deterministic uniform draw in [0, 1) for a stream path."""
    return float(derive_rng(seed, *stream).random())


# ----------------------------------------------------------------------
# Keyed per-id draws (counter-based, order-free).
#
# Samplers need a uniform *per vertex or edge id* that does not depend
# on how many draws happened before it: LABOR requires all candidate
# lists that contain vertex ``u`` to see the *same* uniform for ``u``,
# and the batch-dependency knob needs reuse decisions that are nested
# across kappa values.  A sequential generator cannot provide either,
# so these helpers hash ``(stream path, id)`` through splitmix64.

_U64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB


def _splitmix64_int(z: int) -> int:
    z &= _U64
    z = ((z ^ (z >> 30)) * _MIX_1) & _U64
    z = ((z ^ (z >> 27)) * _MIX_2) & _U64
    return z ^ (z >> 31)


def _stream_key(seed: int, *stream: StreamPart) -> int:
    """Fold a stream path into one 64-bit key (same components as
    :func:`derive_seed_sequence`, so stream naming stays uniform)."""
    key = _splitmix64_int((int(seed) & _MASK) + _GAMMA)
    for part in stream:
        key = _splitmix64_int(key ^ (_component(part) + _GAMMA))
    return key


def hashed_uint64(seed: int, *stream: StreamPart, ids) -> np.ndarray:
    """One 64-bit hash per id, a pure function of ``(stream path, id)``."""
    ids = np.asarray(ids, dtype=np.int64).astype(np.uint64)
    key = np.uint64(_stream_key(seed, *stream))
    with np.errstate(over="ignore"):
        z = (ids + np.uint64(1)) * np.uint64(_GAMMA) + key
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_2)
    return z ^ (z >> np.uint64(31))


def hashed_uniforms(seed: int, *stream: StreamPart, ids) -> np.ndarray:
    """One uniform in [0, 1) per id, keyed by ``(stream path, id)``.

    Unlike ``derive_rng(...).random(n)`` the value for a given id is
    independent of every other id in the batch and of call order, which
    is what makes LABOR's shared per-vertex uniforms and nested-in-kappa
    reuse sets possible.
    """
    return (hashed_uint64(seed, *stream, ids=ids) >> np.uint64(11)) * float(
        2.0**-53
    )
