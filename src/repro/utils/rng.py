"""Consistent seed derivation for every random decision in the system.

Workload generation, fault-schedule draws, and retry-backoff jitter all
need the same property: a run is a pure function of its seeds, and two
modules drawing from the same base seed must not accidentally share (or
collide on) a stream.  ``derive_rng`` builds a ``numpy`` generator from
a base seed plus an arbitrary *stream path* of ints and strings, so
call sites spell out what the draw is for::

    rng = derive_rng(seed, "workload", "arrivals")
    u = derive_uniform(seed, phase, src, dst, attempt)

String components are hashed with CRC-32 (stable across processes and
Python versions, unlike ``hash``); integer components pass through with
the sign bit masked off.  ``derive_uniform(seed, a, b, ...)`` with
all-integer components is bit-identical to the historical
``np.random.default_rng([seed & 0x7FFFFFFF, a, b, ...]).random()``
formula the fault injector used before this helper existed, so probed
traces and chaos runs replay unchanged.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

_MASK = 0x7FFFFFFF

StreamPart = Union[int, str]


def _component(part: StreamPart) -> int:
    """One non-negative 31-bit integer per stream-path component."""
    if isinstance(part, str):
        return zlib.crc32(part.encode("utf-8")) & _MASK
    return int(part) & _MASK


def derive_seed_sequence(seed: int, *stream: StreamPart) -> list:
    """The integer seed list feeding ``np.random.default_rng``."""
    return [int(seed) & _MASK] + [_component(part) for part in stream]


def derive_rng(seed: int, *stream: StreamPart) -> np.random.Generator:
    """A generator for one named stream of a seeded run."""
    return np.random.default_rng(derive_seed_sequence(seed, *stream))


def derive_uniform(seed: int, *stream: StreamPart) -> float:
    """One deterministic uniform draw in [0, 1) for a stream path."""
    return float(derive_rng(seed, *stream).random())
