"""Ring-based communication schedule (Section 4.3, Figure 8).

Worker ``i`` sends its ``j``-th output chunk to worker
``(i + j + 1) % m``.  In round ``j`` every worker sends to a distinct
receiver (the map ``i -> (i + j + 1) % m`` is a permutation), so no two
workers ever target the same destination simultaneously -- the property
that avoids receiver-NIC congestion.
"""

from __future__ import annotations

from typing import List, Tuple


def ring_partner(worker: int, round_index: int, num_workers: int) -> int:
    """Destination of ``worker``'s chunk in round ``round_index``."""
    if num_workers < 1:
        raise ValueError("num_workers must be positive")
    return (worker + round_index + 1) % num_workers


def ring_rounds(num_workers: int) -> List[List[Tuple[int, int]]]:
    """All ``m - 1`` rounds of (sender, receiver) pairs.

    Every round is a perfect matching of senders to distinct receivers;
    over all rounds each ordered pair (i, j), i != j, appears exactly
    once.
    """
    rounds = []
    for j in range(num_workers - 1):
        rounds.append(
            [(i, ring_partner(i, j, num_workers)) for i in range(num_workers)]
        )
    return rounds
