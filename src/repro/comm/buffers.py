"""Lock-free parallel message enqueuing (Section 4.3).

The paper's trick: because each layer's messages have a regular
pattern, the send buffer can be laid out ahead of time by parsing the
destination vertex ids into a write-position index; worker threads then
write their messages at disjoint precomputed offsets, so no mutex is
needed.  :class:`PositionIndexedBuffer` is a working implementation of
that layout (it also performs the real data routing in the engines);
the *cost* difference between the lock-free and mutex designs is
modeled by :class:`repro.cluster.network.NetworkProfile.pack_time`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class PositionIndexedBuffer:
    """A fixed-layout send buffer with precomputed write positions.

    Built once per layer from the destination-worker assignment of each
    message row; ``scatter`` then writes rows into a single contiguous
    buffer at conflict-free positions, and ``chunk_for`` slices out one
    destination worker's chunk.
    """

    def __init__(self, dest_workers: np.ndarray, num_workers: int):
        dest_workers = np.asarray(dest_workers, dtype=np.int64)
        if len(dest_workers) and (
            dest_workers.min() < 0 or dest_workers.max() >= num_workers
        ):
            raise ValueError("destination worker out of range")
        self.num_workers = num_workers
        self.num_messages = len(dest_workers)
        # Stable sort groups rows by destination while preserving the
        # per-destination order (the "write position index").
        self.positions = np.empty(self.num_messages, dtype=np.int64)
        order = np.argsort(dest_workers, kind="stable")
        self.positions[order] = np.arange(self.num_messages)
        counts = np.bincount(dest_workers, minlength=num_workers)
        self.offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        self._order = order

    def scatter(self, rows: np.ndarray) -> np.ndarray:
        """Write ``rows`` into the buffer at their precomputed positions."""
        rows = np.asarray(rows)
        if len(rows) != self.num_messages:
            raise ValueError(
                f"buffer laid out for {self.num_messages} messages, got {len(rows)}"
            )
        out = np.empty_like(rows)
        out[self.positions] = rows
        return out

    def chunk_slice(self, worker: int) -> slice:
        """Slice of the packed buffer holding ``worker``'s chunk."""
        return slice(int(self.offsets[worker]), int(self.offsets[worker + 1]))

    def chunk_for(self, packed: np.ndarray, worker: int) -> np.ndarray:
        return packed[self.chunk_slice(worker)]

    def chunk_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    def source_rows(self, worker: int) -> np.ndarray:
        """Original row indices that land in ``worker``'s chunk."""
        return self._order[self.chunk_slice(worker)]


def pack_by_destination(
    rows: np.ndarray, dest_workers: np.ndarray, num_workers: int
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """One-shot convenience: group ``rows`` into per-destination chunks.

    Returns the packed array and the list of per-worker chunks (views).
    """
    buffer = PositionIndexedBuffer(dest_workers, num_workers)
    packed = buffer.scatter(rows)
    chunks = [buffer.chunk_for(packed, w) for w in range(num_workers)]
    return packed, chunks
