"""Communication layer: chunked buffers, ring schedule, exchange model.

Implements Section 4.3's three communication optimizations:

- **R** -- ring-based task scheduling (:mod:`repro.comm.ring`);
- **L** -- lock-free parallel message enqueuing
  (:class:`repro.comm.buffers.PositionIndexedBuffer`);
- **P** -- communication/computation overlapping
  (:func:`repro.comm.scheduler.run_exchange`'s ``overlap`` option).
"""

from repro.comm.buffers import PositionIndexedBuffer, pack_by_destination
from repro.comm.ring import ring_rounds, ring_partner
from repro.comm.scheduler import (
    CacheTraffic,
    CommOptions,
    ExchangeStats,
    run_exchange,
)

__all__ = [
    "PositionIndexedBuffer",
    "pack_by_destination",
    "ring_rounds",
    "ring_partner",
    "CacheTraffic",
    "CommOptions",
    "ExchangeStats",
    "run_exchange",
]
