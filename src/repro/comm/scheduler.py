"""The exchange-phase timing model.

One call to :func:`run_exchange` models one BSP superstep of a layer:
every worker packs its outgoing chunks, the chunks travel, and every
worker runs its compute for the step.  The three Section 4.3
optimizations map to :class:`CommOptions` flags:

- ``ring`` -- removes receiver-NIC congestion (distinct receivers per
  round, Figure 8);
- ``lock_free`` -- removes the mutex contention multiplier from message
  packing;
- ``overlap`` -- pipelines chunk communication with chunk compute, so
  the phase costs ``max(comm, compute)`` plus a pipeline-fill term
  instead of ``comm + compute``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.cluster.network import NetworkProfile
from repro.cluster.timeline import CPU, GPU, IDLE, NET_RECV, NET_SEND, Timeline

if TYPE_CHECKING:  # comm stays below resilience in the layering
    from repro.resilience.injector import FaultInjector
    from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class CommOptions:
    """Which of the paper's communication optimizations are enabled."""

    ring: bool = False
    lock_free: bool = False
    overlap: bool = False

    @classmethod
    def none(cls) -> "CommOptions":
        """Raw engine: no optimizations (Figure 9's baselines)."""
        return cls(False, False, False)

    @classmethod
    def all(cls) -> "CommOptions":
        """Full NeutronStar: R + L + P."""
        return cls(True, True, True)

    def label(self) -> str:
        tags = [
            tag
            for tag, enabled in (("R", self.ring), ("L", self.lock_free), ("P", self.overlap))
            if enabled
        ]
        return "+".join(tags) if tags else "raw"


@dataclass(frozen=True)
class CacheTraffic:
    """The staleness-bounded cached share of one exchange.

    ``volumes[s, r]`` are the bytes the cached entries *would* cost to
    fetch.  On a refresh step (``refresh=True``) they are added to the
    exchange and reported as ``refresh_bytes``; otherwise the fetch is
    skipped entirely -- the entries are served from the historical
    cache -- and the volume is reported as ``saved_bytes``.
    """

    volumes: np.ndarray
    refresh: bool
    entries: int = 0


@dataclass
class ExchangeStats:
    """Per-phase accounting (seconds / bytes, per worker).

    ``send_s`` includes retransmitted copies when message-loss faults
    are active; ``retry_wait_s`` is the per-sender timeout + backoff
    stall, and ``retries`` counts retransmissions across the phase.

    With a :class:`CacheTraffic` attached, ``cache_hits`` /
    ``cache_misses`` count entries served stale / re-fetched this phase,
    ``refresh_bytes`` is the re-fetched volume (already included in
    ``total_bytes``), and ``saved_bytes`` the volume a cache-free
    exchange would additionally have moved.
    """

    pack_s: np.ndarray
    send_s: np.ndarray
    recv_s: np.ndarray
    compute_s: np.ndarray
    phase_s: np.ndarray
    total_bytes: int
    retry_wait_s: Optional[np.ndarray] = field(default=None)
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    refresh_bytes: int = 0
    saved_bytes: int = 0

    @property
    def makespan(self) -> float:
        return float(self.phase_s.max()) if len(self.phase_s) else 0.0


def run_exchange(
    timeline: Timeline,
    network: NetworkProfile,
    volumes: np.ndarray,
    chunk_compute: Optional[np.ndarray] = None,
    local_compute: Optional[np.ndarray] = None,
    options: CommOptions = CommOptions(),
    barrier: bool = True,
    bytes_per_message: float = 0.0,
    faults: Optional["FaultInjector"] = None,
    retry: Optional["RetryPolicy"] = None,
    cache: Optional[CacheTraffic] = None,
    participants: Optional[Sequence[int]] = None,
    pipeline_depth: int = 1,
    staggered: bool = False,
) -> ExchangeStats:
    """Charge one exchange-and-compute superstep to the timeline.

    Parameters
    ----------
    volumes:
        ``volumes[s, r]`` bytes sent from worker ``s`` to worker ``r``
        (diagonal ignored).
    chunk_compute:
        ``chunk_compute[s, r]`` seconds receiver ``r`` spends computing
        on the chunk from sender ``s`` (DepComm work).
    local_compute:
        Per-worker seconds of communication-independent compute (the
        DepCache share of a Hybrid layer, or local edges); overlappable.
    barrier:
        Synchronise all clocks at the end of the phase (BSP semantics).
    bytes_per_message:
        Size of one per-vertex message; used to derive the enqueue count
        each chunk pays (``chunk_bytes / bytes_per_message``).  0 means
        one enqueue per chunk.
    faults:
        Optional :class:`repro.resilience.injector.FaultInjector`.  When
        given, link bandwidth/latency degradations, straggler CPU
        slowdowns (packing and link serving), and message drops apply;
        dropped chunks are retransmitted under ``retry`` with the
        timeout + backoff stall charged to the timeline as ``idle``.
        ``None`` (the default) is the bit-identical fault-free path.
    retry:
        Retransmission policy for lost chunks (only meaningful with
        ``faults``); ``None`` disables loss handling.
    cache:
        Optional :class:`CacheTraffic` for the staleness-bounded cached
        share of this exchange: fetched (and charged) on refresh steps,
        skipped otherwise.  ``None`` is the bit-identical cache-free
        path.
    participants:
        Workers taking part in this exchange.  Workers outside the set
        are skipped entirely -- no packing, wire time, compute, or
        barrier wait is charged to them, and any ``volumes`` rows or
        columns naming them are ignored (callers must route around dead
        or idle workers themselves).  ``None`` (the default) means all
        workers, bit-identical to the historical behaviour.
    pipeline_depth:
        Sub-chunks each sender splits its chunk into
        (:class:`~repro.execution.passes.ChunkPipelinePass`): under the
        P optimization the receiver's compute starts after the first
        *sub*-chunk, so the pipeline fill term divides by this.  1 (the
        default) is bit-identical to unsplit chunks.
    staggered:
        A pass-scheduled ring send order
        (:class:`~repro.execution.passes.RingReorderPass`): each round
        has distinct receivers, so receive wire time is charged
        uncongested even when ``options.ring`` is off.  False (the
        default) is bit-identical to the unordered schedule.
    """
    m = timeline.num_workers
    volumes = np.asarray(volumes, dtype=np.float64)
    if volumes.shape != (m, m):
        raise ValueError(f"volumes must be {m}x{m}, got {volumes.shape}")
    off_diag = ~np.eye(m, dtype=bool)
    cache_hits = cache_misses = refresh_bytes = saved_bytes = 0
    if cache is not None:
        cache_volumes = np.asarray(cache.volumes, dtype=np.float64)
        if cache_volumes.shape != (m, m):
            raise ValueError(
                f"cache volumes must be {m}x{m}, got {cache_volumes.shape}"
            )
        if cache.refresh:
            volumes = volumes + cache_volumes
            refresh_bytes = int(cache_volumes[off_diag].sum())
            cache_misses = cache.entries
        else:
            saved_bytes = int(cache_volumes[off_diag].sum())
            cache_hits = cache.entries
    if chunk_compute is None:
        chunk_compute = np.zeros((m, m))
    if local_compute is None:
        local_compute = np.zeros(m)

    pack_s = np.zeros(m)
    send_s = np.zeros(m)
    recv_s = np.zeros(m)
    compute_s = np.zeros(m)
    phase_s = np.zeros(m)
    congested = not (options.ring or staggered)
    pipeline_depth = max(int(pipeline_depth), 1)

    retry_wait = np.zeros(m) if faults is not None else None
    retries = 0
    phase = faults.next_phase() if faults is not None else 0

    if participants is None:
        members = list(range(m))
    else:
        members = sorted({int(w) for w in participants})
        for w in members:
            if not 0 <= w < m:
                raise ValueError(f"participant {w} not in 0..{m - 1}")
        if not members:
            raise ValueError("participants must name at least one worker")

    for i in members:
        if faults is None:
            sends = [
                volumes[i, j]
                for j in members
                if j != i and volumes[i, j] > 0
            ]
            recvs = [
                volumes[j, i]
                for j in members
                if j != i and volumes[j, i] > 0
            ]
            pack_s[i] = sum(
                network.pack_time(
                    b,
                    num_messages=(
                        int(round(b / bytes_per_message)) if bytes_per_message else 1
                    ),
                    lock_free=options.lock_free,
                )
                for b in sends
            )
            send_s[i] = sum(network.wire_time(b) for b in sends)
            recv_s[i] = sum(
                network.wire_time(b, congested=congested) for b in recvs
            )
            wait_i = 0.0
            recv_bytes = int(sum(recvs))
            recv_wires = [
                network.wire_time(b, congested=congested) for b in recvs
            ]
        else:
            # Fault-aware path: degraded links, slow packing on straggler
            # CPUs, dropped chunks retransmitted with timeout + backoff.
            t_i = timeline.now(i)
            cpu_slow = faults.cpu_factor(i, t_i)
            wait_i = 0.0
            recv_bytes = 0
            recv_wires = []
            for j in members:
                if j == i:
                    continue
                b = volumes[i, j]
                if b > 0:
                    pack = network.pack_time(
                        b,
                        num_messages=(
                            int(round(b / bytes_per_message))
                            if bytes_per_message
                            else 1
                        ),
                        lock_free=options.lock_free,
                    )
                    pack_s[i] += pack * cpu_slow
                    plan = faults.plan_transfer(
                        network, i, j, b, t_i, False, retry, phase
                    )
                    send_s[i] += plan.send_s
                    wait_i += plan.wait_s
                    retries += plan.retries
                b = volumes[j, i]
                if b > 0:
                    wire = faults.wire_time(
                        network, j, i, b, t_i, congested=congested
                    )
                    recv_s[i] += wire
                    recv_wires.append(wire)
                    recv_bytes += int(b)
            retry_wait[i] = wait_i
        compute_s[i] = local_compute[i] + sum(
            chunk_compute[j, i] for j in members if j != i
        )

        start = timeline.now(i)
        # CPU packing always precedes the wire.
        timeline.advance(i, CPU, pack_s[i])
        t_comm_start = timeline.now(i)
        # Full-duplex NIC; a sender blocked on timeouts/backoff holds the
        # phase open even if its receive side finished.
        comm = max(send_s[i] + wait_i, recv_s[i])
        if options.overlap and compute_s[i] > 0 and comm > 0:
            # Pipeline: first chunk (or first sub-chunk, when the
            # chunk-pipeline pass split senders) must arrive before
            # compute starts.
            fill = min(recv_wires, default=0.0) / pipeline_depth
            span = max(comm, fill + compute_s[i])
            timeline.record_interval(i, NET_SEND, t_comm_start, send_s[i])
            if wait_i > 0:
                timeline.record_interval(
                    i, IDLE, t_comm_start + send_s[i], wait_i
                )
            timeline.record_interval(
                i, NET_RECV, t_comm_start, recv_s[i], num_bytes=recv_bytes
            )
            timeline.record_interval(i, GPU, t_comm_start + fill, compute_s[i])
            timeline.advance_at_least_until(i, t_comm_start + span)
        else:
            timeline.record_interval(i, NET_SEND, t_comm_start, send_s[i])
            if wait_i > 0:
                timeline.record_interval(
                    i, IDLE, t_comm_start + send_s[i], wait_i
                )
            timeline.record_interval(
                i, NET_RECV, t_comm_start, recv_s[i], num_bytes=recv_bytes
            )
            timeline.advance_at_least_until(i, t_comm_start + comm)
            timeline.advance(i, GPU, compute_s[i])
        phase_s[i] = timeline.now(i) - start

    if participants is not None:
        inside = np.zeros(m, dtype=bool)
        inside[members] = True
        off_diag &= inside[:, None] & inside[None, :]

    if barrier:
        timeline.barrier(None if participants is None else members)
    return ExchangeStats(
        pack_s=pack_s,
        send_s=send_s,
        recv_s=recv_s,
        compute_s=compute_s,
        phase_s=phase_s,
        total_bytes=int(volumes[off_diag].sum()),
        retry_wait_s=retry_wait,
        retries=retries,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        refresh_bytes=refresh_bytes,
        saved_bytes=saved_bytes,
    )
