"""The exchange-phase timing model.

One call to :func:`run_exchange` models one BSP superstep of a layer:
every worker packs its outgoing chunks, the chunks travel, and every
worker runs its compute for the step.  The three Section 4.3
optimizations map to :class:`CommOptions` flags:

- ``ring`` -- removes receiver-NIC congestion (distinct receivers per
  round, Figure 8);
- ``lock_free`` -- removes the mutex contention multiplier from message
  packing;
- ``overlap`` -- pipelines chunk communication with chunk compute, so
  the phase costs ``max(comm, compute)`` plus a pipeline-fill term
  instead of ``comm + compute``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.network import NetworkProfile
from repro.cluster.timeline import CPU, GPU, NET_RECV, NET_SEND, Timeline


@dataclass(frozen=True)
class CommOptions:
    """Which of the paper's communication optimizations are enabled."""

    ring: bool = False
    lock_free: bool = False
    overlap: bool = False

    @classmethod
    def none(cls) -> "CommOptions":
        """Raw engine: no optimizations (Figure 9's baselines)."""
        return cls(False, False, False)

    @classmethod
    def all(cls) -> "CommOptions":
        """Full NeutronStar: R + L + P."""
        return cls(True, True, True)

    def label(self) -> str:
        tags = [
            tag
            for tag, enabled in (("R", self.ring), ("L", self.lock_free), ("P", self.overlap))
            if enabled
        ]
        return "+".join(tags) if tags else "raw"


@dataclass
class ExchangeStats:
    """Per-phase accounting (seconds / bytes, per worker)."""

    pack_s: np.ndarray
    send_s: np.ndarray
    recv_s: np.ndarray
    compute_s: np.ndarray
    phase_s: np.ndarray
    total_bytes: int

    @property
    def makespan(self) -> float:
        return float(self.phase_s.max()) if len(self.phase_s) else 0.0


def run_exchange(
    timeline: Timeline,
    network: NetworkProfile,
    volumes: np.ndarray,
    chunk_compute: Optional[np.ndarray] = None,
    local_compute: Optional[np.ndarray] = None,
    options: CommOptions = CommOptions(),
    barrier: bool = True,
    bytes_per_message: float = 0.0,
) -> ExchangeStats:
    """Charge one exchange-and-compute superstep to the timeline.

    Parameters
    ----------
    volumes:
        ``volumes[s, r]`` bytes sent from worker ``s`` to worker ``r``
        (diagonal ignored).
    chunk_compute:
        ``chunk_compute[s, r]`` seconds receiver ``r`` spends computing
        on the chunk from sender ``s`` (DepComm work).
    local_compute:
        Per-worker seconds of communication-independent compute (the
        DepCache share of a Hybrid layer, or local edges); overlappable.
    barrier:
        Synchronise all clocks at the end of the phase (BSP semantics).
    bytes_per_message:
        Size of one per-vertex message; used to derive the enqueue count
        each chunk pays (``chunk_bytes / bytes_per_message``).  0 means
        one enqueue per chunk.
    """
    m = timeline.num_workers
    volumes = np.asarray(volumes, dtype=np.float64)
    if volumes.shape != (m, m):
        raise ValueError(f"volumes must be {m}x{m}, got {volumes.shape}")
    off_diag = ~np.eye(m, dtype=bool)
    if chunk_compute is None:
        chunk_compute = np.zeros((m, m))
    if local_compute is None:
        local_compute = np.zeros(m)

    pack_s = np.zeros(m)
    send_s = np.zeros(m)
    recv_s = np.zeros(m)
    compute_s = np.zeros(m)
    phase_s = np.zeros(m)
    congested = not options.ring

    for i in range(m):
        sends = [volumes[i, j] for j in range(m) if j != i and volumes[i, j] > 0]
        recvs = [volumes[j, i] for j in range(m) if j != i and volumes[j, i] > 0]
        pack_s[i] = sum(
            network.pack_time(
                b,
                num_messages=(
                    int(round(b / bytes_per_message)) if bytes_per_message else 1
                ),
                lock_free=options.lock_free,
            )
            for b in sends
        )
        send_s[i] = sum(network.wire_time(b) for b in sends)
        recv_s[i] = sum(network.wire_time(b, congested=congested) for b in recvs)
        compute_s[i] = local_compute[i] + sum(
            chunk_compute[j, i] for j in range(m) if j != i
        )

        start = timeline.now(i)
        # CPU packing always precedes the wire.
        timeline.advance(i, CPU, pack_s[i])
        t_comm_start = timeline.now(i)
        comm = max(send_s[i], recv_s[i])  # full-duplex NIC
        recv_bytes = int(sum(recvs))
        if options.overlap and compute_s[i] > 0 and comm > 0:
            # Pipeline: first chunk must arrive before compute starts.
            fill = min(
                (network.wire_time(b, congested=congested) for b in recvs),
                default=0.0,
            )
            span = max(comm, fill + compute_s[i])
            timeline.record_interval(i, NET_SEND, t_comm_start, send_s[i])
            timeline.record_interval(
                i, NET_RECV, t_comm_start, recv_s[i], num_bytes=recv_bytes
            )
            timeline.record_interval(i, GPU, t_comm_start + fill, compute_s[i])
            timeline.advance_at_least_until(i, t_comm_start + span)
        else:
            timeline.record_interval(i, NET_SEND, t_comm_start, send_s[i])
            timeline.record_interval(
                i, NET_RECV, t_comm_start, recv_s[i], num_bytes=recv_bytes
            )
            timeline.advance_at_least_until(i, t_comm_start + comm)
            timeline.advance(i, GPU, compute_s[i])
        phase_s[i] = timeline.now(i) - start

    if barrier:
        timeline.barrier()
    return ExchangeStats(
        pack_s=pack_s,
        send_s=send_s,
        recv_s=recv_s,
        compute_s=compute_s,
        phase_s=phase_s,
        total_bytes=int(volumes[off_diag].sum()),
    )
