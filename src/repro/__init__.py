"""NeutronStar (SIGMOD 2022) reproduction.

A pure-Python reproduction of *NeutronStar: Distributed GNN Training with
Hybrid Dependency Management* (Wang et al., SIGMOD 2022).

The package is organised as the paper's system diagram (Figure 4):

- :mod:`repro.tensor` -- from-scratch numpy autograd engine (the role
  PyTorch plays in the paper).
- :mod:`repro.graph` -- graph storage (COO/CSR/CSC), generators, and the
  dataset catalog mirroring the paper's Table 2.
- :mod:`repro.partition` -- chunk-based, hash, Fennel, and Metis-like
  graph partitioners (Section 5.7).
- :mod:`repro.cluster` -- the simulated cluster: device and network
  profiles, workers, and a discrete-event timeline.
- :mod:`repro.comm` -- destination-chunked message buffers, ring-based
  scheduling, and the lock-free enqueue model (Section 4.3).
- :mod:`repro.core` -- the NeutronStar dataflow API (GetFromDepNbr,
  ScatterToEdge, EdgeForward, GatherByDst, VertexForward and the
  auto-generated backward flow) plus GCN/GIN/GAT layers.
- :mod:`repro.costmodel` -- probing of T_v/T_e/T_c, the redundant
  computation and communication costs (Eqs. 1-3), and the greedy
  dependency partitioner (Algorithm 4).
- :mod:`repro.engines` -- DepCache, DepComm, Hybrid, DistDGL-like
  sampling, ROC-like, and shared-memory engines.
- :mod:`repro.training` -- the distributed trainer, losses, metrics, and
  the convergence (time-to-accuracy) runner.
- :mod:`repro.analysis` -- structural and dependency reports with a
  strategy recommendation.
- :mod:`repro.experiments` -- every paper table/figure and ablation as
  a library call (``run_all`` writes one JSON of results).
- :mod:`repro.cli` -- the ``python -m repro`` command line.
"""

from repro.graph.datasets import load_dataset
from repro.cluster.spec import ClusterSpec
from repro.core.layers import GCNConv, GINConv, GATConv
from repro.core.model import GNNModel
from repro.engines import (
    DepCacheEngine,
    DepCommEngine,
    HybridEngine,
    RocLikeEngine,
    SamplingEngine,
    SharedMemoryEngine,
    make_engine,
)
from repro.training.trainer import DistributedTrainer, EpochReport

__version__ = "1.0.0"

__all__ = [
    "load_dataset",
    "ClusterSpec",
    "GCNConv",
    "GINConv",
    "GATConv",
    "GNNModel",
    "DepCacheEngine",
    "DepCommEngine",
    "HybridEngine",
    "RocLikeEngine",
    "SamplingEngine",
    "SharedMemoryEngine",
    "make_engine",
    "DistributedTrainer",
    "EpochReport",
    "__version__",
]
