"""Probing the environment constants T_v, T_e, T_c (Algorithm 4, line 1).

The paper probes by executing a test training on a small graph.  Here
the "execution" runs through the same cluster timing model the engines
use, so the probed constants are consistent with what the engines will
actually charge -- exactly the property the real system gets from
probing on real hardware.

All three constants are *per-dimension, per-epoch* costs (forward +
backward):

- ``t_v``: seconds to compute one vertex's representation, per output
  dimension;
- ``t_e``: seconds to process one edge, per input dimension;
- ``t_c``: seconds to communicate one vertex representation, per
  dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.core.blocks import build_block
from repro.core.model import GNNModel
from repro.graph import generators


@dataclass(frozen=True)
class ProbeResult:
    """Probed per-dimension costs, plus per-layer refinements.

    ``t_v_layer[l-1]`` / ``t_e_layer[l-1]`` are per-vertex / per-edge
    seconds for layer ``l`` (already multiplied out, *not* per
    dimension); the scalar ``t_v`` / ``t_e`` / ``t_c`` are the paper's
    per-dimension constants averaged over layers.
    """

    t_v: float
    t_e: float
    t_c: float
    t_v_layer: List[float]
    t_e_layer: List[float]
    t_c_layer: List[float]
    # Bulk-transfer decomposition used by the tensor-parallel cost
    # term: ``t_c`` folds the per-vertex message overhead into a single
    # per-dimension rate, but a feature-slice all-to-all ships a few
    # huge messages, so its cost is ``bytes * t_c_byte`` plus
    # ``t_msg`` per peer message (one-way, before the fwd+bwd factor).
    t_c_byte: float = 0.0
    t_msg: float = 0.0

    def vertex_cost(self, layer: int) -> float:
        """Per-epoch seconds to (re)compute one vertex at layer ``layer``."""
        return self.t_v_layer[layer - 1]

    def edge_cost(self, layer: int) -> float:
        """Per-epoch seconds to (re)process one in-edge at layer ``layer``."""
        return self.t_e_layer[layer - 1]

    def comm_cost(self, layer: int) -> float:
        """Per-epoch seconds to communicate one layer-``layer`` input."""
        return self.t_c_layer[layer - 1]


# Forward + backward: backward costs roughly 2x forward for compute and
# one reverse message for communication.
_BACKWARD_COMPUTE = 3.0
_BACKWARD_COMM = 2.0


def probe_constants(
    spec: ClusterSpec,
    model: GNNModel,
    probe_vertices: int = 64,
    probe_degree: int = 4,
    comm: CommOptions = CommOptions.all(),
) -> ProbeResult:
    """Measure T_v, T_e, T_c on a small test graph.

    The test graph is a small ring-of-cliques whose per-layer blocks are
    pushed through the device/network timing model; per-vertex and
    per-edge times are read off and normalised.  ``comm`` is the
    configuration the training run will use: probing with mutex queues
    and unscheduled (congested) sends yields a higher ``T_c``, exactly
    as a real probe run on that configuration would measure.
    """
    test_graph = generators.erdos_renyi(
        probe_vertices, probe_vertices * probe_degree, seed=7
    ).gcn_normalized()
    device = spec.device
    network = spec.network
    dims = model.dims()

    t_v_layer: List[float] = []
    t_e_layer: List[float] = []
    t_c_layer: List[float] = []
    all_vertices = list(range(test_graph.num_vertices))
    for l in range(1, model.num_layers + 1):
        layer = model.layer(l)
        block = build_block(test_graph, all_vertices, l)
        dense_s = device.dense_time(layer.dense_flops(block))
        sparse_s = device.sparse_time(layer.sparse_flops(block))
        per_vertex = dense_s / block.num_outputs * _BACKWARD_COMPUTE
        per_edge = sparse_s / max(block.num_edges, 1) * _BACKWARD_COMPUTE
        t_v_layer.append(per_vertex)
        t_e_layer.append(per_edge)
        # Communicating one layer-l input: d^(l-1) floats each way, plus
        # packing, amortising the per-message latency over a typical
        # chunk of remote vertices.
        payload = dims[l - 1] * 4
        amortised_latency = network.latency_s / max(probe_vertices, 1)
        wire = network.wire_time(payload, congested=not comm.ring)
        pack = network.pack_time(payload, num_messages=1, lock_free=comm.lock_free)
        per_comm = (
            wire - network.latency_s + amortised_latency + pack
        ) * _BACKWARD_COMM
        t_c_layer.append(per_comm)

    t_v = sum(t / d for t, d in zip(t_v_layer, dims[1:])) / model.num_layers
    t_e = sum(t / d for t, d in zip(t_e_layer, dims[:-1])) / model.num_layers
    t_c = sum(t / d for t, d in zip(t_c_layer, dims[:-1])) / model.num_layers
    # Steady-state per-byte cost of a bulk transfer (wire + packing,
    # one-way, latency excluded) and the per-message latency itself.
    congestion = 1.0 if comm.ring else network.congestion_factor
    t_c_byte = (
        congestion / network.bytes_per_s + 1.0 / network.cpu_pack_bytes_per_s
    )
    t_msg = network.latency_s * congestion
    return ProbeResult(
        t_v=t_v,
        t_e=t_e,
        t_c=t_c,
        t_v_layer=t_v_layer,
        t_e_layer=t_e_layer,
        t_c_layer=t_c_layer,
        t_c_byte=t_c_byte,
        t_msg=t_msg,
    )
