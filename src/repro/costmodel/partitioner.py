"""Algorithm 4: greedy partitioning of dependencies into R (cache) / C (comm).

For each worker and each layer, every remote dependency is scored with
its redundant-computation cost ``t_r`` (Eq. 1) and communication cost
``t_c`` (Eq. 2); dependencies are greedily cached cheapest-first while
``t_r < t_c`` and the memory budget allows, everything else is
communicated.  The per-worker passes are independent (the paper runs
them in parallel), and the whole partitioning runs once before training
(Table 3's "Preprocessing" row).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.costmodel.costs import DependencyCostModel
from repro.costmodel.probe import ProbeResult
from repro.graph.graph import Graph
from repro.graph.khop import dependency_layers
from repro.partition.base import Partitioning


@dataclass
class DependencyPartition:
    """Algorithm 4's output for one worker.

    ``cached[l-1]`` / ``communicated[l-1]`` are the global vertex ids of
    ``R_i^l`` / ``C_i^l`` for layers ``l = 1..L``.
    """

    worker: int
    cached: List[np.ndarray]
    communicated: List[np.ndarray]
    memory_bytes: int = 0
    modeled_seconds: float = 0.0  # modeled preprocessing time
    measured_evaluations: int = 0

    def cache_ratio(self) -> float:
        total_cached = sum(len(r) for r in self.cached)
        total = total_cached + sum(len(c) for c in self.communicated)
        return total_cached / total if total else 1.0


# Modeled cost of one subtree measurement during preprocessing: a BFS
# visit is a few memory accesses per edge on the CPU.
_SECONDS_PER_EDGE_VISIT = 4.0e-8
_SECONDS_PER_EVALUATION = 1.5e-6


def partition_dependencies(
    graph: Graph,
    partitioning: Partitioning,
    worker: int,
    dims: List[int],
    constants: ProbeResult,
    memory_limit_bytes: Optional[int] = None,
    mu: float = 0.8,
    force_cache_fraction: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> DependencyPartition:
    """Run Algorithm 4 for one worker.

    ``force_cache_fraction`` bypasses the cost comparison and caches a
    fixed fraction of dependencies per layer (cheapest-first) -- the
    knob Figure 11's ratio sweep turns.
    """
    num_layers = len(dims) - 1
    owned = partitioning.part(worker)
    owned_mask = np.zeros(graph.num_vertices, dtype=bool)
    owned_mask[owned] = True
    deps = dependency_layers(graph, owned, num_layers)

    cost_model = DependencyCostModel(graph, dims, constants, owned_mask, mu=mu)
    cached: List[np.ndarray] = []
    communicated: List[np.ndarray] = []
    memory_used = 0
    modeled_seconds = 0.0
    evaluations = 0
    budget_exhausted = False

    if force_cache_fraction is not None:
        # Forced mode (Figure 11's sweep): a global quota over all
        # layers' dependencies, filled cheapest-first.  Layer 1 fills
        # first (cached features cost nothing per epoch), matching the
        # greedy's own preference ordering.
        total_deps = sum(len(d) for d in deps)
        quota_remaining = int(round(force_cache_fraction * total_deps))
    else:
        quota_remaining = None

    for l in range(1, num_layers + 1):
        layer_deps = deps[l - 1]
        if budget_exhausted or len(layer_deps) == 0:
            cached.append(np.empty(0, dtype=np.int64))
            communicated.append(layer_deps.copy())
            continue
        t_c = cost_model.t_c(l)
        # Line 5-7: initial measurement of every dependency.
        heap = []
        for u in layer_deps:
            measurement = cost_model.t_r(int(u), l)
            evaluations += 1
            modeled_seconds += (
                _SECONDS_PER_EVALUATION
                + measurement.new_edge_count * _SECONDS_PER_EDGE_VISIT
            )
            heapq.heappush(heap, (measurement.cost_s, int(u)))

        layer_cached: List[int] = []
        # Line 8-15: pop cheapest, re-measure, decide.
        while heap:
            _, u = heapq.heappop(heap)
            measurement = cost_model.t_r(u, l)
            evaluations += 1
            modeled_seconds += (
                _SECONDS_PER_EVALUATION
                + measurement.new_edge_count * _SECONDS_PER_EDGE_VISIT
            )
            if quota_remaining is not None:
                should_cache = quota_remaining > 0
                if not should_cache:
                    break  # global quota exhausted
            else:
                should_cache = measurement.cost_s < t_c
                if not should_cache:
                    # Costs only grow up the heap; nothing further caches.
                    break
            if (
                memory_limit_bytes is not None
                and memory_used + measurement.memory_bytes > memory_limit_bytes
            ):
                budget_exhausted = True  # Line 14-15: stop immediately.
                break
            layer_cached.append(u)
            if quota_remaining is not None:
                quota_remaining -= 1
            memory_used += measurement.memory_bytes
            cost_model.commit(u, l, measurement)

        cached_arr = np.asarray(sorted(layer_cached), dtype=np.int64)
        cached.append(cached_arr)
        communicated.append(np.setdiff1d(layer_deps, cached_arr))

    return DependencyPartition(
        worker=worker,
        cached=cached,
        communicated=communicated,
        memory_bytes=memory_used,
        modeled_seconds=modeled_seconds,
        measured_evaluations=evaluations,
    )
