"""Algorithm 4: greedy partitioning of dependencies into R (cache) / C (comm).

For each worker and each layer, every remote dependency is scored with
its redundant-computation cost ``t_r`` (Eq. 1) and communication cost
``t_c`` (Eq. 2); dependencies are greedily cached cheapest-first while
``t_r < t_c`` and the memory budget allows, everything else is
communicated.  The per-worker passes are independent (the paper runs
them in parallel), and the whole partitioning runs once before training
(Table 3's "Preprocessing" row).

With a :class:`repro.cache.CacheConfig`, a third outcome joins the
binary choice: dependencies that are neither worth replicating
(``t_r >= t_c``) nor worth fetching every epoch become ``CACHED`` --
served from a staleness-bounded historical-embedding cache and
re-fetched every ``tau`` epochs, at amortized cost ``t_c / tau``
(:meth:`DependencyCostModel.t_cached`).  CACHED is only ever chosen
when it is *strictly* cheaper than DepComm (``tau >= 2``) and the
admission policy's ranking fits the worker's remaining share of the
memory budget ``S``, which replicated closures and cache entries
draw from jointly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cache.budget import CacheBudget, CacheConfig
from repro.cache.policies import make_policy
from repro.cluster.memory import MemoryTracker
from repro.costmodel.costs import DependencyCostModel, TensorParallelCostInputs
from repro.costmodel.probe import _BACKWARD_COMM, ProbeResult
from repro.graph.graph import Graph
from repro.graph.khop import dependency_layers
from repro.partition.base import Partitioning

#: MemoryTracker label for replicated (DepCache) closures.
CLOSURE_MEMORY_LABEL = "depcache_closure"


@dataclass
class DependencyPartition:
    """Algorithm 4's output for one worker.

    ``cached[l-1]`` / ``communicated[l-1]`` are the global vertex ids of
    ``R_i^l`` / ``C_i^l`` for layers ``l = 1..L``; ``stale_cached[l-1]``
    is the CACHED set ``H_i^l`` (empty unless a cache config was given).
    """

    worker: int
    cached: List[np.ndarray]
    communicated: List[np.ndarray]
    memory_bytes: int = 0
    modeled_seconds: float = 0.0  # modeled preprocessing time
    measured_evaluations: int = 0
    stale_cached: List[np.ndarray] = field(default_factory=list)
    cache_bytes: int = 0
    # Per-layer ``{vertex: t_r seconds}`` that seeded the greedy's heap;
    # a later run passes this back as ``warm_start`` to skip the initial
    # measurement sweep (lines 5-7) when re-planning online.
    initial_costs: List[Dict[int, float]] = field(default_factory=list)
    # Four-way extension: this worker's per-layer tensor-parallel vote
    # and both sides of the comparison (the engine aggregates the costs
    # across workers before flipping a layer for real, so a flipped
    # layer here still records ``communicated = all deps`` as the
    # fallback if the global vote disagrees).
    tp_layers: List[bool] = field(default_factory=list)
    tp_cost_s: List[float] = field(default_factory=list)
    three_way_cost_s: List[float] = field(default_factory=list)

    def _total(self) -> int:
        return (
            sum(len(r) for r in self.cached)
            + sum(len(c) for c in self.communicated)
            + sum(len(h) for h in self.stale_cached)
        )

    def cache_ratio(self) -> float:
        total = self._total()
        return sum(len(r) for r in self.cached) / total if total else 1.0

    def stale_ratio(self) -> float:
        total = self._total()
        return sum(len(h) for h in self.stale_cached) / total if total else 0.0


# Modeled cost of one subtree measurement during preprocessing: a BFS
# visit is a few memory accesses per edge on the CPU.
_SECONDS_PER_EDGE_VISIT = 4.0e-8
_SECONDS_PER_EVALUATION = 1.5e-6

# Share of the per-vertex exchange's receive time that survives overlap:
# chunked execution starts aggregating as chunks land, hiding roughly
# half the wire time under compute (the scheduler's overlap pipeline).
# The TP slice transposes get no discount -- they are latency-dominated
# and must complete before the layer's dense work can start.
_OVERLAP_DISCOUNT = 0.5


def _select_stale_cached(
    candidates: np.ndarray,
    layer: int,
    cost_model: DependencyCostModel,
    cache: CacheConfig,
    cache_budget: CacheBudget,
    graph: Graph,
    partitioning: Partitioning,
    worker: int,
) -> np.ndarray:
    """Pick the CACHED subset of one layer's communicated candidates."""
    if len(candidates) == 0 or not cache.strictly_amortizes():
        return np.empty(0, dtype=np.int64)
    # Strict-dominance gate: amortized fetch must beat per-epoch fetch.
    if not cost_model.t_cached(layer, cache.tau) < cost_model.t_c(layer):
        return np.empty(0, dtype=np.int64)
    policy = make_policy(cache, graph, partitioning, worker)
    entry_bytes = cost_model.cache_entry_bytes(layer)
    taken: List[int] = []
    for u in policy.rank(candidates, layer):
        if not cache_budget.admit(entry_bytes):
            break
        taken.append(int(u))
    return np.asarray(sorted(taken), dtype=np.int64)


def partition_dependencies(
    graph: Graph,
    partitioning: Partitioning,
    worker: int,
    dims: List[int],
    constants: ProbeResult,
    memory_limit_bytes: Optional[int] = None,
    mu: float = 0.8,
    force_cache_fraction: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    cache: Optional[CacheConfig] = None,
    warm_start: Optional[DependencyPartition] = None,
    tp: Optional[TensorParallelCostInputs] = None,
) -> DependencyPartition:
    """Run Algorithm 4 for one worker.

    ``tp`` enables the per-layer *four-way* extension: after the
    three-way pass prices a layer, the whole layer is tentatively
    flipped to tensor parallelism when ``t_tp(l)`` undercuts the
    committed recompute + cached + comm total, rolling the tentative
    replications and allocations back.  Forced-fraction mode ignores
    ``tp`` (the Figure-11 sweep measures the three-way knob).

    ``force_cache_fraction`` bypasses the cost comparison and caches a
    fixed fraction of dependencies per layer (cheapest-first) -- the
    knob Figure 11's ratio sweep turns.  ``cache`` enables the third
    CACHED outcome (see module docstring); replicated closures and
    cache entries share ``memory_limit_bytes``.

    ``warm_start`` (a prior run's :class:`DependencyPartition` for the
    same worker and partitioning) seeds the heap from that run's
    ``initial_costs`` instead of measuring every subtree, skipping the
    initial sweep -- the online re-planning path.  Every pop is still
    re-measured before deciding, so warm-started decisions stay correct
    as long as the seeding order is close (exact under the health
    monitor's uniform per-worker constant scaling, which preserves the
    ``t_r`` ordering).  Vertices absent from the prior costs (a changed
    dependency set) fall back to a fresh measurement.
    """
    num_layers = len(dims) - 1
    owned = partitioning.part(worker)
    owned_mask = np.zeros(graph.num_vertices, dtype=bool)
    owned_mask[owned] = True
    deps = dependency_layers(graph, owned, num_layers)

    cost_model = DependencyCostModel(
        graph, dims, constants, owned_mask, mu=mu, tp=tp
    )
    cached: List[np.ndarray] = []
    communicated: List[np.ndarray] = []
    stale_cached: List[np.ndarray] = []
    initial_costs: List[Dict[int, float]] = []
    tp_layers: List[bool] = []
    tp_cost_s: List[float] = []
    three_way_cost_s: List[float] = []
    # One shared budget S: closures and cache entries draw jointly.
    # A zero budget still gets a (1-byte) tracker so every multi-byte
    # allocation is refused, matching the pre-tracker int bookkeeping.
    tracker = (
        MemoryTracker(worker, max(1, memory_limit_bytes))
        if memory_limit_bytes is not None
        else None
    )
    cache_budget = (
        CacheBudget.for_config(cache, tracker=tracker) if cache is not None else None
    )
    modeled_seconds = 0.0
    evaluations = 0
    budget_exhausted = False

    if force_cache_fraction is not None:
        # Forced mode (Figure 11's sweep): a global quota over all
        # layers' dependencies, filled cheapest-first.  Layer 1 fills
        # first (cached features cost nothing per epoch), matching the
        # greedy's own preference ordering.
        total_deps = sum(len(d) for d in deps)
        quota_remaining = int(round(force_cache_fraction * total_deps))
    else:
        quota_remaining = None

    tp_enabled = tp is not None and quota_remaining is None
    tp_below = False  # this worker tentatively flipped a lower layer

    for l in range(1, num_layers + 1):
        layer_deps = deps[l - 1]
        t_c = cost_model.t_c(l)
        warm_costs: Optional[Dict[int, float]] = None
        if warm_start is not None and l - 1 < len(warm_start.initial_costs):
            warm_costs = warm_start.initial_costs[l - 1]
        layer_costs: Dict[int, float] = {}
        layer_cached_cost = 0.0
        snapshot = None
        if tp_enabled:
            snapshot = (
                [rep.copy() for rep in cost_model.replicated],
                tracker.snapshot() if tracker is not None else None,
                cache_budget.snapshot() if cache_budget is not None else None,
                budget_exhausted,
            )
        # Below a TP layer the inputs exist only as owner-resident rows
        # (there is no closure to replicate through a slice exchange),
        # so recompute is off the table and the layer is priced on the
        # cached/comm options alone.
        if budget_exhausted or len(layer_deps) == 0 or tp_below:
            cached.append(np.empty(0, dtype=np.int64))
            layer_cached = []
        else:
            # Line 5-7: initial measurement of every dependency (seeded
            # from the warm start's prior costs when available).
            heap = []
            for u in layer_deps:
                u = int(u)
                if warm_costs is not None and u in warm_costs:
                    cost = warm_costs[u]
                else:
                    measurement = cost_model.t_r(u, l)
                    evaluations += 1
                    modeled_seconds += (
                        _SECONDS_PER_EVALUATION
                        + measurement.new_edge_count * _SECONDS_PER_EDGE_VISIT
                    )
                    cost = measurement.cost_s
                layer_costs[u] = cost
                heapq.heappush(heap, (cost, u))

            layer_cached = []
            # Line 8-15: pop cheapest, re-measure, decide.
            while heap:
                _, u = heapq.heappop(heap)
                measurement = cost_model.t_r(u, l)
                evaluations += 1
                modeled_seconds += (
                    _SECONDS_PER_EVALUATION
                    + measurement.new_edge_count * _SECONDS_PER_EDGE_VISIT
                )
                if quota_remaining is not None:
                    should_cache = quota_remaining > 0
                    if not should_cache:
                        break  # global quota exhausted
                else:
                    should_cache = measurement.cost_s < t_c
                    if not should_cache:
                        # Costs only grow up the heap; nothing further caches.
                        break
                if tracker is not None and not tracker.try_allocate(
                    measurement.memory_bytes, CLOSURE_MEMORY_LABEL
                ):
                    budget_exhausted = True  # Line 14-15: stop immediately.
                    break
                layer_cached.append(u)
                layer_cached_cost += measurement.cost_s
                if quota_remaining is not None:
                    quota_remaining -= 1
                cost_model.commit(u, l, measurement)

            cached.append(np.asarray(sorted(layer_cached), dtype=np.int64))
        initial_costs.append(layer_costs)
        remaining = np.setdiff1d(layer_deps, cached[-1])
        if cache_budget is not None:
            stale = _select_stale_cached(
                remaining, l, cost_model, cache, cache_budget,
                graph, partitioning, worker,
            )
        else:
            stale = np.empty(0, dtype=np.int64)
        stale_cached.append(stale)
        communicated.append(np.setdiff1d(remaining, stale))

        # Fourth option: flip the whole layer to tensor parallelism
        # when the dense slice transposes undercut the three-way total.
        # The comparison prices the comm share in the same bulk units as
        # ``t_tp`` (bytes at the wire rate plus one latency per peer,
        # forward + backward) rather than the per-vertex ``t_c``, whose
        # amortized framing overhead would bias the vote toward TP.
        tp_cost = cost_model.t_tp(l) if tp_enabled else math.inf
        stale_cost = (
            len(stale) * cost_model.t_cached(l, cache.tau)
            if cache is not None
            else 0.0
        )
        comm_rows = len(communicated[-1])
        bulk_comm = 0.0
        if comm_rows:
            bulk_comm = _BACKWARD_COMM * (
                comm_rows * dims[l - 1] * 4 * constants.t_c_byte
                + (partitioning.num_parts - 1) * constants.t_msg
            )
        three_way = (
            layer_cached_cost + stale_cost + _OVERLAP_DISCOUNT * bulk_comm
        )
        tp_cost_s.append(tp_cost)
        three_way_cost_s.append(three_way)
        flip = tp_enabled and len(layer_deps) > 0 and tp_cost < three_way
        tp_layers.append(flip)
        if flip:
            reps, tracker_state, cache_state, prior_exhausted = snapshot
            cost_model.replicated = reps
            if tracker is not None and tracker_state is not None:
                tracker.restore(tracker_state)
            if cache_budget is not None and cache_state is not None:
                cache_budget.restore(cache_state)
            budget_exhausted = prior_exhausted
            cached[-1] = np.empty(0, dtype=np.int64)
            stale_cached[-1] = np.empty(0, dtype=np.int64)
            # Every dependency stays fetchable: if the engine-level vote
            # keeps the layer three-way, this worker falls back to pure
            # DepComm for it rather than an unplanned recompute.
            communicated[-1] = np.sort(
                np.asarray(layer_deps, dtype=np.int64)
            )
            tp_below = True

    closure_bytes = 0
    cache_bytes = 0
    if tracker is not None:
        breakdown = tracker.breakdown()
        closure_bytes = breakdown.get(CLOSURE_MEMORY_LABEL, 0)
    if cache_budget is not None:
        cache_bytes = cache_budget.bytes
    return DependencyPartition(
        worker=worker,
        cached=cached,
        communicated=communicated,
        memory_bytes=closure_bytes,
        modeled_seconds=modeled_seconds,
        measured_evaluations=evaluations,
        stale_cached=stale_cached,
        cache_bytes=cache_bytes,
        initial_costs=initial_costs,
        tp_layers=tp_layers,
        tp_cost_s=tp_cost_s,
        three_way_cost_s=three_way_cost_s,
    )


def vote_tp_layers(
    partitions: Dict[int, DependencyPartition],
    assignment: np.ndarray,
    dims: List[int],
    constants: ProbeResult,
    num_workers: int,
) -> List[bool]:
    """Aggregate per-worker four-way prices into one global per-layer vote.

    The engine flips a layer to tensor parallelism only when the slowest
    worker's TP cost undercuts the slowest worker's three-way cost plus
    the *excess sender straggler*.  Per-worker prices only count what a
    worker receives, but the per-vertex exchange also serializes each
    owner's sends -- under degree skew the hub owner ships far more rows
    than the balanced share, and the BSP barrier makes every worker wait
    for it.  The penalty charges the straggler's rows beyond the mean at
    the bulk byte rate (forward + backward); TP's all-to-all is
    volume-balanced by construction, so it pays no such term.

    Layers priced ``inf`` on any worker (TP disabled or unpriced) and
    layers with no remote dependencies never flip.
    """
    if not partitions:
        return []
    num_layers = min(
        min(len(p.tp_cost_s), len(p.three_way_cost_s))
        for p in partitions.values()
    )
    flags: List[bool] = []
    for l in range(1, num_layers + 1):
        tp_max = 0.0
        three_way_max = 0.0
        send_rows = np.zeros(num_workers, dtype=np.int64)
        total_rows = 0
        for part in partitions.values():
            tp_max = max(tp_max, part.tp_cost_s[l - 1])
            three_way_max = max(three_way_max, part.three_way_cost_s[l - 1])
            comm = part.communicated[l - 1]
            if len(comm):
                send_rows += np.bincount(
                    assignment[comm], minlength=num_workers
                )
                total_rows += len(comm)
        if total_rows == 0 or math.isinf(tp_max):
            flags.append(False)
            continue
        excess = float(send_rows.max()) - total_rows / num_workers
        straggler = (
            max(0.0, excess)
            * dims[l - 1]
            * 4
            * constants.t_c_byte
            * _BACKWARD_COMM
        )
        flags.append(tp_max < three_way_max + straggler)
    return flags
