"""Algorithm 4: greedy partitioning of dependencies into R (cache) / C (comm).

For each worker and each layer, every remote dependency is scored with
its redundant-computation cost ``t_r`` (Eq. 1) and communication cost
``t_c`` (Eq. 2); dependencies are greedily cached cheapest-first while
``t_r < t_c`` and the memory budget allows, everything else is
communicated.  The per-worker passes are independent (the paper runs
them in parallel), and the whole partitioning runs once before training
(Table 3's "Preprocessing" row).

With a :class:`repro.cache.CacheConfig`, a third outcome joins the
binary choice: dependencies that are neither worth replicating
(``t_r >= t_c``) nor worth fetching every epoch become ``CACHED`` --
served from a staleness-bounded historical-embedding cache and
re-fetched every ``tau`` epochs, at amortized cost ``t_c / tau``
(:meth:`DependencyCostModel.t_cached`).  CACHED is only ever chosen
when it is *strictly* cheaper than DepComm (``tau >= 2``) and the
admission policy's ranking fits the worker's remaining share of the
memory budget ``S``, which replicated closures and cache entries
draw from jointly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cache.budget import CacheBudget, CacheConfig
from repro.cache.policies import make_policy
from repro.cluster.memory import MemoryTracker
from repro.costmodel.costs import DependencyCostModel
from repro.costmodel.probe import ProbeResult
from repro.graph.graph import Graph
from repro.graph.khop import dependency_layers
from repro.partition.base import Partitioning

#: MemoryTracker label for replicated (DepCache) closures.
CLOSURE_MEMORY_LABEL = "depcache_closure"


@dataclass
class DependencyPartition:
    """Algorithm 4's output for one worker.

    ``cached[l-1]`` / ``communicated[l-1]`` are the global vertex ids of
    ``R_i^l`` / ``C_i^l`` for layers ``l = 1..L``; ``stale_cached[l-1]``
    is the CACHED set ``H_i^l`` (empty unless a cache config was given).
    """

    worker: int
    cached: List[np.ndarray]
    communicated: List[np.ndarray]
    memory_bytes: int = 0
    modeled_seconds: float = 0.0  # modeled preprocessing time
    measured_evaluations: int = 0
    stale_cached: List[np.ndarray] = field(default_factory=list)
    cache_bytes: int = 0
    # Per-layer ``{vertex: t_r seconds}`` that seeded the greedy's heap;
    # a later run passes this back as ``warm_start`` to skip the initial
    # measurement sweep (lines 5-7) when re-planning online.
    initial_costs: List[Dict[int, float]] = field(default_factory=list)

    def _total(self) -> int:
        return (
            sum(len(r) for r in self.cached)
            + sum(len(c) for c in self.communicated)
            + sum(len(h) for h in self.stale_cached)
        )

    def cache_ratio(self) -> float:
        total = self._total()
        return sum(len(r) for r in self.cached) / total if total else 1.0

    def stale_ratio(self) -> float:
        total = self._total()
        return sum(len(h) for h in self.stale_cached) / total if total else 0.0


# Modeled cost of one subtree measurement during preprocessing: a BFS
# visit is a few memory accesses per edge on the CPU.
_SECONDS_PER_EDGE_VISIT = 4.0e-8
_SECONDS_PER_EVALUATION = 1.5e-6


def _select_stale_cached(
    candidates: np.ndarray,
    layer: int,
    cost_model: DependencyCostModel,
    cache: CacheConfig,
    cache_budget: CacheBudget,
    graph: Graph,
    partitioning: Partitioning,
    worker: int,
) -> np.ndarray:
    """Pick the CACHED subset of one layer's communicated candidates."""
    if len(candidates) == 0 or not cache.strictly_amortizes():
        return np.empty(0, dtype=np.int64)
    # Strict-dominance gate: amortized fetch must beat per-epoch fetch.
    if not cost_model.t_cached(layer, cache.tau) < cost_model.t_c(layer):
        return np.empty(0, dtype=np.int64)
    policy = make_policy(cache, graph, partitioning, worker)
    entry_bytes = cost_model.cache_entry_bytes(layer)
    taken: List[int] = []
    for u in policy.rank(candidates, layer):
        if not cache_budget.admit(entry_bytes):
            break
        taken.append(int(u))
    return np.asarray(sorted(taken), dtype=np.int64)


def partition_dependencies(
    graph: Graph,
    partitioning: Partitioning,
    worker: int,
    dims: List[int],
    constants: ProbeResult,
    memory_limit_bytes: Optional[int] = None,
    mu: float = 0.8,
    force_cache_fraction: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    cache: Optional[CacheConfig] = None,
    warm_start: Optional[DependencyPartition] = None,
) -> DependencyPartition:
    """Run Algorithm 4 for one worker.

    ``force_cache_fraction`` bypasses the cost comparison and caches a
    fixed fraction of dependencies per layer (cheapest-first) -- the
    knob Figure 11's ratio sweep turns.  ``cache`` enables the third
    CACHED outcome (see module docstring); replicated closures and
    cache entries share ``memory_limit_bytes``.

    ``warm_start`` (a prior run's :class:`DependencyPartition` for the
    same worker and partitioning) seeds the heap from that run's
    ``initial_costs`` instead of measuring every subtree, skipping the
    initial sweep -- the online re-planning path.  Every pop is still
    re-measured before deciding, so warm-started decisions stay correct
    as long as the seeding order is close (exact under the health
    monitor's uniform per-worker constant scaling, which preserves the
    ``t_r`` ordering).  Vertices absent from the prior costs (a changed
    dependency set) fall back to a fresh measurement.
    """
    num_layers = len(dims) - 1
    owned = partitioning.part(worker)
    owned_mask = np.zeros(graph.num_vertices, dtype=bool)
    owned_mask[owned] = True
    deps = dependency_layers(graph, owned, num_layers)

    cost_model = DependencyCostModel(graph, dims, constants, owned_mask, mu=mu)
    cached: List[np.ndarray] = []
    communicated: List[np.ndarray] = []
    stale_cached: List[np.ndarray] = []
    initial_costs: List[Dict[int, float]] = []
    # One shared budget S: closures and cache entries draw jointly.
    # A zero budget still gets a (1-byte) tracker so every multi-byte
    # allocation is refused, matching the pre-tracker int bookkeeping.
    tracker = (
        MemoryTracker(worker, max(1, memory_limit_bytes))
        if memory_limit_bytes is not None
        else None
    )
    cache_budget = (
        CacheBudget.for_config(cache, tracker=tracker) if cache is not None else None
    )
    modeled_seconds = 0.0
    evaluations = 0
    budget_exhausted = False

    if force_cache_fraction is not None:
        # Forced mode (Figure 11's sweep): a global quota over all
        # layers' dependencies, filled cheapest-first.  Layer 1 fills
        # first (cached features cost nothing per epoch), matching the
        # greedy's own preference ordering.
        total_deps = sum(len(d) for d in deps)
        quota_remaining = int(round(force_cache_fraction * total_deps))
    else:
        quota_remaining = None

    for l in range(1, num_layers + 1):
        layer_deps = deps[l - 1]
        warm_costs: Optional[Dict[int, float]] = None
        if warm_start is not None and l - 1 < len(warm_start.initial_costs):
            warm_costs = warm_start.initial_costs[l - 1]
        layer_costs: Dict[int, float] = {}
        if budget_exhausted or len(layer_deps) == 0:
            cached.append(np.empty(0, dtype=np.int64))
            layer_cached = []
        else:
            t_c = cost_model.t_c(l)
            # Line 5-7: initial measurement of every dependency (seeded
            # from the warm start's prior costs when available).
            heap = []
            for u in layer_deps:
                u = int(u)
                if warm_costs is not None and u in warm_costs:
                    cost = warm_costs[u]
                else:
                    measurement = cost_model.t_r(u, l)
                    evaluations += 1
                    modeled_seconds += (
                        _SECONDS_PER_EVALUATION
                        + measurement.new_edge_count * _SECONDS_PER_EDGE_VISIT
                    )
                    cost = measurement.cost_s
                layer_costs[u] = cost
                heapq.heappush(heap, (cost, u))

            layer_cached = []
            # Line 8-15: pop cheapest, re-measure, decide.
            while heap:
                _, u = heapq.heappop(heap)
                measurement = cost_model.t_r(u, l)
                evaluations += 1
                modeled_seconds += (
                    _SECONDS_PER_EVALUATION
                    + measurement.new_edge_count * _SECONDS_PER_EDGE_VISIT
                )
                if quota_remaining is not None:
                    should_cache = quota_remaining > 0
                    if not should_cache:
                        break  # global quota exhausted
                else:
                    should_cache = measurement.cost_s < t_c
                    if not should_cache:
                        # Costs only grow up the heap; nothing further caches.
                        break
                if tracker is not None and not tracker.try_allocate(
                    measurement.memory_bytes, CLOSURE_MEMORY_LABEL
                ):
                    budget_exhausted = True  # Line 14-15: stop immediately.
                    break
                layer_cached.append(u)
                if quota_remaining is not None:
                    quota_remaining -= 1
                cost_model.commit(u, l, measurement)

            cached.append(np.asarray(sorted(layer_cached), dtype=np.int64))
        initial_costs.append(layer_costs)
        remaining = np.setdiff1d(layer_deps, cached[-1])
        if cache_budget is not None:
            stale = _select_stale_cached(
                remaining, l, cost_model, cache, cache_budget,
                graph, partitioning, worker,
            )
        else:
            stale = np.empty(0, dtype=np.int64)
        stale_cached.append(stale)
        communicated.append(np.setdiff1d(remaining, stale))

    closure_bytes = 0
    cache_bytes = 0
    if tracker is not None:
        breakdown = tracker.breakdown()
        closure_bytes = breakdown.get(CLOSURE_MEMORY_LABEL, 0)
    if cache_budget is not None:
        cache_bytes = cache_budget.bytes
    return DependencyPartition(
        worker=worker,
        cached=cached,
        communicated=communicated,
        memory_bytes=closure_bytes,
        modeled_seconds=modeled_seconds,
        measured_evaluations=evaluations,
        stale_cached=stale_cached,
        cache_bytes=cache_bytes,
        initial_costs=initial_costs,
    )
