"""Exhaustive (oracle) dependency partitioning for tiny instances.

The optimal R/C split is NP-hard (Section 3 reduces it to 0-1 integer
programming), so the paper uses the greedy of Algorithm 4.  For tiny
dependency sets the optimum is computable by enumerating every subset;
this module does exactly that, giving the test suite and the ablation
benchmark a ground truth to measure the greedy's optimality gap
against.

Only feasible for |D| up to ~16 per layer (2^|D| subsets).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.costmodel.costs import DependencyCostModel, TensorParallelCostInputs
from repro.costmodel.probe import ProbeResult
from repro.graph.graph import Graph
from repro.graph.khop import dependency_layers
from repro.partition.base import Partitioning


@dataclass
class OracleResult:
    """The exhaustive optimum for one worker's dependency split."""

    worker: int
    cached: List[np.ndarray]
    communicated: List[np.ndarray]
    total_cost_s: float
    subsets_evaluated: int


def _evaluate(
    graph: Graph,
    dims: List[int],
    constants: ProbeResult,
    owned_mask: np.ndarray,
    choice: List[np.ndarray],
    deps: List[np.ndarray],
    mu: float,
    memory_limit_bytes: Optional[int],
    tp: Optional[TensorParallelCostInputs] = None,
    tp_layers: Optional[List[bool]] = None,
) -> Optional[float]:
    """Total Eq.-3 cost of a concrete R assignment (None if infeasible).

    ``tp_layers`` marks layers priced tensor-parallel: their per-
    dependency terms are replaced by the single ``t_tp(l)`` term (the
    fourth option's flat slice-transpose cost).
    """
    cost_model = DependencyCostModel(
        graph, dims, constants, owned_mask, mu=mu, tp=tp
    )
    total = 0.0
    memory = 0
    for l, (cached_l, deps_l) in enumerate(zip(choice, deps), start=1):
        if tp_layers is not None and tp_layers[l - 1]:
            total += cost_model.t_tp(l)
            continue
        cached_set = set(cached_l.tolist())
        for u in deps_l:
            if int(u) in cached_set:
                measurement = cost_model.t_r(int(u), l)
                total += measurement.cost_s
                memory += measurement.memory_bytes
                cost_model.commit(int(u), l, measurement)
            else:
                total += cost_model.t_c(l)
    if memory_limit_bytes is not None and memory > memory_limit_bytes:
        return None
    return total


def oracle_partition(
    graph: Graph,
    partitioning: Partitioning,
    worker: int,
    dims: List[int],
    constants: ProbeResult,
    memory_limit_bytes: Optional[int] = None,
    mu: float = 0.8,
    max_deps: int = 8,
    max_combinations: int = 1 << 17,
) -> OracleResult:
    """Enumerate every R/C split and return the cheapest feasible one.

    Raises ``ValueError`` when any layer has more than ``max_deps``
    dependencies or the cross-layer product of subsets exceeds
    ``max_combinations`` (the enumeration would explode).
    """
    num_layers = len(dims) - 1
    owned = partitioning.part(worker)
    owned_mask = np.zeros(graph.num_vertices, dtype=bool)
    owned_mask[owned] = True
    deps = dependency_layers(graph, owned, num_layers)
    total_combinations = 1
    for d in deps:
        if len(d) > max_deps:
            raise ValueError(
                f"oracle infeasible: {len(d)} dependencies in a layer "
                f"(limit {max_deps})"
            )
        total_combinations *= 1 << len(d)
    if total_combinations > max_combinations:
        raise ValueError(
            f"oracle infeasible: {total_combinations} subset combinations "
            f"(limit {max_combinations})"
        )

    best_cost = np.inf
    best_choice: Optional[List[np.ndarray]] = None
    evaluated = 0
    # Enumerate the cross product of per-layer subsets.
    layer_subsets = [
        [
            np.asarray(sorted(c), dtype=np.int64)
            for size in range(len(d) + 1)
            for c in itertools.combinations(d.tolist(), size)
        ]
        for d in deps
    ]
    for choice in itertools.product(*layer_subsets):
        evaluated += 1
        cost = _evaluate(
            graph, dims, constants, owned_mask, list(choice), deps,
            mu, memory_limit_bytes,
        )
        if cost is not None and cost < best_cost:
            best_cost = cost
            best_choice = list(choice)
    if best_choice is None:
        raise RuntimeError("no feasible dependency split under the budget")
    communicated = [
        np.setdiff1d(d, c) for d, c in zip(deps, best_choice)
    ]
    return OracleResult(
        worker=worker,
        cached=best_choice,
        communicated=communicated,
        total_cost_s=float(best_cost),
        subsets_evaluated=evaluated,
    )


def greedy_cost(
    graph: Graph,
    partitioning: Partitioning,
    worker: int,
    dims: List[int],
    constants: ProbeResult,
    cached: List[np.ndarray],
    mu: float = 0.8,
    tp: Optional[TensorParallelCostInputs] = None,
    tp_layers: Optional[List[bool]] = None,
) -> float:
    """Eq.-3 cost of an arbitrary (e.g. Algorithm 4's) R assignment.

    With ``tp``/``tp_layers`` the assignment may flip whole layers to
    tensor parallelism (the four-way greedy's output shape).
    """
    owned = partitioning.part(worker)
    owned_mask = np.zeros(graph.num_vertices, dtype=bool)
    owned_mask[owned] = True
    deps = dependency_layers(graph, owned, len(dims) - 1)
    cost = _evaluate(
        graph, dims, constants, owned_mask, cached, deps, mu, None,
        tp=tp, tp_layers=tp_layers,
    )
    assert cost is not None
    return cost
