"""Hybrid dependency cost model (Section 3).

- :mod:`repro.costmodel.probe` -- measures the environment-specific
  constants ``T_v``, ``T_e``, ``T_c`` on a small test graph
  (Algorithm 4, line 1).
- :mod:`repro.costmodel.costs` -- the redundant-computation cost
  ``t_r^l(u)`` (Eq. 1) and communication cost ``t_c^l(u)`` (Eq. 2).
- :mod:`repro.costmodel.partitioner` -- the greedy dependency
  partitioner (Algorithm 4) minimising Eq. 3 under the memory limit.
"""

from repro.costmodel.probe import ProbeResult, probe_constants
from repro.costmodel.costs import DependencyCostModel, TensorParallelCostInputs
from repro.costmodel.partitioner import (
    DependencyPartition,
    partition_dependencies,
)

__all__ = [
    "ProbeResult",
    "probe_constants",
    "DependencyCostModel",
    "DependencyPartition",
    "TensorParallelCostInputs",
    "partition_dependencies",
]
