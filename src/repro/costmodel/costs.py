"""Per-dependency costs: Eq. 1 (redundant compute) and Eq. 2 (comm).

``t_r^l(u)`` walks the dependency subtree rooted at ``u`` down to the
features, counting only vertices/edges not already available locally
(owned, or previously cached in ``V_rep``); ``t_c^l(u)`` is the flat
per-vertex communication cost of layer ``l``.  Both are per-epoch
(forward + backward) modeled seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.costmodel.probe import _BACKWARD_COMM, ProbeResult
from repro.graph.graph import Graph


@dataclass
class SubtreeMeasurement:
    """One evaluation of Eq. 1 for a dependency ``u`` at layer ``l``."""

    cost_s: float
    new_vertices: List[np.ndarray]  # per level k = l-1 .. 0 (h^k to compute)
    new_edge_count: int
    memory_bytes: int


@dataclass(frozen=True)
class TensorParallelCostInputs:
    """Per-worker quantities that price the tensor-parallel option.

    Flipping a layer to tensor parallelism replaces this worker's
    per-dependency traffic with two dense slice transposes (NeutronTP):
    the worker ships ``(m-1)/m`` of its owned rows out and receives a
    ``1/m`` slice of everyone else's, then aggregates its slice over
    the *full* edge set -- so the compute side trades the worker's own
    edges for an even ``1/m`` share of all edges.

    ``cost_scale`` scales the modeled TP cost; ``inf`` disables the
    option entirely (the four-way greedy degenerates to three-way),
    which the property tests use to pin bit-identical fallback.
    """

    num_workers: int
    num_vertices: int
    num_owned: int
    total_edges: int
    owned_in_edges: int
    cost_scale: float = 1.0


class DependencyCostModel:
    """Evaluates t_r / t_c for one worker's dependency decisions.

    Parameters
    ----------
    graph:
        The (normalised) training graph.
    dims:
        ``[d^(0), ..., d^(L)]`` layer dimensions.
    constants:
        Probed :class:`ProbeResult`.
    owned_mask:
        Boolean mask of the worker's own vertices (``V_i``): never
        counted as redundant.
    mu:
        Eq. 3's trimming factor for overlapped multi-hop dependencies.
    """

    def __init__(
        self,
        graph: Graph,
        dims: List[int],
        constants: ProbeResult,
        owned_mask: np.ndarray,
        mu: float = 1.0,
        tp: "TensorParallelCostInputs" = None,
    ):
        if not 0 < mu <= 1:
            raise ValueError("mu must be in (0, 1]")
        self.graph = graph
        self.dims = dims
        self.constants = constants
        self.owned_mask = owned_mask
        self.mu = mu
        self.tp = tp
        # V_rep: vertices whose h^k is already locally (re)computed, per
        # level k.  Level 0 entries mean "feature already cached".
        self.replicated: List[np.ndarray] = [
            np.zeros(graph.num_vertices, dtype=bool) for _ in range(len(dims))
        ]

    # ------------------------------------------------------------------
    def t_c(self, layer: int) -> float:
        """Eq. 2: communication cost of one dependency at ``layer``."""
        return self.constants.comm_cost(layer)

    def t_cached(self, layer: int, tau: float) -> float:
        """Amortized comm cost of a staleness-bounded cached dependency.

        A cached entry is re-fetched once every ``tau`` epochs, so its
        per-epoch cost is ``t_c(layer) / tau`` -- the communication-
        amortizing third option between Eq. 1 and Eq. 2.  ``tau <= 1``
        buys no amortization (the entry expires before it is ever served
        stale), so the cost degenerates to the full ``t_c``;
        ``tau = inf`` is a one-time fetch (zero steady-state cost).
        """
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        t_c = self.t_c(layer)
        if tau <= 1:
            return t_c
        if math.isinf(tau):
            return 0.0
        return t_c / float(tau)

    def cache_entry_bytes(self, layer: int) -> int:
        """Resident bytes of one cached ``h^{l-1}`` row at ``layer``."""
        return self.dims[layer - 1] * 4

    def t_tp(self, layer: int) -> float:
        """Modeled per-epoch cost of running ``layer`` tensor-parallel.

        Communication is the two slice transposes (slice before the
        layer, unslice after): this worker sends ``n_own * (m-1)/m``
        rows and receives ``(n - n_own) / m`` row-equivalents of width
        ``d^{l-1}``, each direction once forward and once backward
        (``_BACKWARD_COMM``), priced at the bulk per-byte rate plus one
        message latency per peer.  Compute is the *delta* against the
        hybrid plan: TP aggregates an even ``1/m`` share of all edges
        instead of the worker's own in-edges, so hub-heavy workers get
        a negative (beneficial) term and the deltas sum to zero across
        workers.  Returns ``inf`` when the TP option is unavailable.
        """
        tp = self.tp
        if tp is None or tp.num_workers < 2 or math.isinf(tp.cost_scale):
            return math.inf
        m = tp.num_workers
        d = self.dims[layer - 1]
        rows = (
            tp.num_owned * (m - 1) / m
            + (tp.num_vertices - tp.num_owned) / m
        )
        comm = _BACKWARD_COMM * (
            rows * d * 4 * self.constants.t_c_byte
            + 2 * (m - 1) * self.constants.t_msg
        )
        compute = (
            tp.total_edges / m - tp.owned_in_edges
        ) * self.constants.edge_cost(layer)
        return tp.cost_scale * (comm + compute)

    def t_r(self, u: int, layer: int) -> SubtreeMeasurement:
        """Eq. 1: redundant-computation cost of caching ``u`` at ``layer``.

        Walks ``u``'s in-neighborhood down ``layer - 1`` levels; at each
        level ``k`` (the layer whose representation must be recomputed)
        it counts vertices and in-edges not owned and not already in
        ``V_rep``, weighting by the per-layer probed costs.  Level 0
        contributes memory (cached features) but no per-epoch compute.
        """
        graph = self.graph
        csc = graph.csc
        indptr = csc.indptr
        cost = 0.0
        new_edge_count = 0
        memory = 0
        new_vertices: List[np.ndarray] = []
        frontier = np.asarray([u], dtype=np.int64)
        # Level k = layer-1 down to 1: h^k recomputed for the frontier.
        for k in range(layer - 1, 0, -1):
            rep = self.replicated[k]
            if len(frontier) == 1:
                # The first level is always a single vertex, so the
                # mask filter reduces to two bool probes.
                v = int(frontier[0])
                fresh = (
                    frontier[:0]
                    if (self.owned_mask[v] or rep[v])
                    else frontier
                )
            else:
                fresh = frontier[~self.owned_mask[frontier] & ~rep[frontier]]
            new_vertices.append(fresh)
            if len(fresh):
                if len(fresh) == 1:
                    # One vertex's in-edges are a single indptr slice;
                    # skip the general gather.
                    v = int(fresh[0])
                    lo = int(indptr[v])
                    hi = int(indptr[v + 1])
                    sources = csc.other[lo:hi]
                    edge_count = hi - lo
                else:
                    _, sources, eids = csc.select(fresh)
                    edge_count = len(eids)
                cost += self.mu * (
                    len(fresh) * self.constants.vertex_cost(k)
                    + edge_count * self.constants.edge_cost(k)
                )
                new_edge_count += edge_count
                memory += len(fresh) * self.dims[k] * 4 + edge_count * 12
                frontier = np.unique(sources)
            else:
                frontier = np.empty(0, dtype=np.int64)
            if len(frontier) == 0:
                break
        # Level 0: features of the remaining frontier must be cached
        # (one-time fetch, no per-epoch compute).
        rep0 = self.replicated[0]
        fresh0 = (
            frontier[~self.owned_mask[frontier] & ~rep0[frontier]]
            if len(frontier)
            else frontier
        )
        new_vertices.append(fresh0)
        memory += len(fresh0) * self.dims[0] * 4
        return SubtreeMeasurement(
            cost_s=cost,
            new_vertices=new_vertices,
            new_edge_count=new_edge_count,
            memory_bytes=memory,
        )

    def commit(self, u: int, layer: int, measurement: SubtreeMeasurement) -> None:
        """Add ``u``'s subtree to ``V_rep`` after deciding to cache it."""
        levels = list(range(layer - 1, 0, -1)) + [0]
        for k, fresh in zip(levels, measurement.new_vertices):
            if len(fresh):
                self.replicated[k][fresh] = True
