"""Deterministic synthetic graph generators.

The paper evaluates on web/social graphs whose relevant properties for
the DepCache/DepComm tradeoff are vertex count, average degree, and
degree skew.  We regenerate graphs matching those shapes:

- :func:`rmat` -- recursive-matrix graphs (Chakrabarti et al.) with a
  tunable skew, standing in for web and social networks.
- :func:`community` -- planted-partition graphs with dense intra-block
  connectivity and label-correlated features, standing in for Reddit
  (high average degree + homophily, so accuracy experiments converge).
- :func:`erdos_renyi`, :func:`ring`, :func:`star`, :func:`chain`,
  :func:`complete` -- simple shapes for tests and probing.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.graph import Graph


def _dedup(src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Remove duplicate edges and self loops."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    combined = src.astype(np.int64) * (dst.max() + 1 if len(dst) else 1) + dst
    _, unique_idx = np.unique(combined, return_index=True)
    unique_idx.sort()
    return src[unique_idx], dst[unique_idx]


def rmat(
    num_vertices: int,
    num_edges: int,
    a: float = 0.45,
    b: float = 0.15,
    c: float = 0.15,
    seed: int = 0,
    bidirectional: bool = False,
) -> Graph:
    """R-MAT generator: recursively choose a quadrant per bit of the id.

    ``a + b + c + d = 1`` with ``d = 1 - a - b - c``.  The quadrant
    weights control two properties that matter for the reproduction:

    - *skew*: asymmetry between ``a`` and ``d`` concentrates edges on
      low-id hubs (power-law-like degrees);
    - *locality*: diagonal dominance (``a + d`` large) makes src and dst
      share high-order id bits, so edges connect nearby ids.  Chunk
      partitioning assigns contiguous id ranges to workers, so high
      locality means few remote dependencies --- the property that makes
      web graphs (Google) DepCache-friendly and social networks (Pokec)
      DepComm-friendly.

    Duplicate edges and self loops are dropped; we oversample by 25% to
    roughly compensate.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("rmat probabilities must sum to at most 1")
    rng = np.random.default_rng(seed)
    bits = max(1, int(np.ceil(np.log2(max(num_vertices, 2)))))
    want = int(num_edges * 1.25) + 16
    src = np.zeros(want, dtype=np.int64)
    dst = np.zeros(want, dtype=np.int64)
    for _ in range(bits):
        r = rng.random(want)
        src_bit = (r >= a + b).astype(np.int64)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        src = src * 2 + src_bit
        dst = dst * 2 + dst_bit
    src %= num_vertices
    dst %= num_vertices
    src, dst = _dedup(src, dst)
    src, dst = src[:num_edges], dst[:num_edges]
    if bidirectional:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        src, dst = _dedup(src, dst)
    return Graph(num_vertices, src, dst, name="rmat")


def locality_graph(
    num_vertices: int,
    num_edges: int,
    locality_width: float = 0.01,
    global_fraction: float = 0.1,
    hub_exponent: float = 0.0,
    seed: int = 0,
) -> Graph:
    """Web/social graph with an explicit locality model.

    Most edges connect nearby vertex ids: ``src = dst + offset`` with a
    Laplace-distributed offset of scale ``locality_width * num_vertices``.
    A ``global_fraction`` of edges connect uniformly random endpoints,
    optionally biased toward low-id hubs with a Zipf-like weight
    ``(rank+1)^-hub_exponent`` (degree skew).

    Chunk partitioning assigns contiguous id ranges to workers, so
    ``locality_width`` directly controls how many dependencies are
    remote: small width = web-graph-like (DepCache-friendly), large
    ``global_fraction`` = social-network-like (DepComm-friendly).
    """
    if not 0 <= global_fraction <= 1:
        raise ValueError("global_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    want = int(num_edges * 1.3) + 16
    dst = rng.integers(0, num_vertices, size=want)
    offsets = np.round(
        rng.laplace(0.0, max(locality_width * num_vertices, 1.0), size=want)
    ).astype(np.int64)
    src = (dst + offsets) % num_vertices
    is_global = rng.random(want) < global_fraction
    n_global = int(is_global.sum())
    if n_global:
        if hub_exponent > 0:
            weights = 1.0 / np.power(np.arange(1, num_vertices + 1), hub_exponent)
            weights /= weights.sum()
            src[is_global] = rng.choice(num_vertices, size=n_global, p=weights)
        else:
            src[is_global] = rng.integers(0, num_vertices, size=n_global)
    src, dst = _dedup(src, dst)
    return Graph(
        num_vertices, src[:num_edges], dst[:num_edges], name="locality_graph"
    )


def erdos_renyi(num_vertices: int, num_edges: int, seed: int = 0) -> Graph:
    """Uniform random directed graph with ``num_edges`` distinct edges."""
    rng = np.random.default_rng(seed)
    want = int(num_edges * 1.2) + 16
    src = rng.integers(0, num_vertices, size=want)
    dst = rng.integers(0, num_vertices, size=want)
    src, dst = _dedup(src, dst)
    return Graph(num_vertices, src[:num_edges], dst[:num_edges], name="erdos_renyi")


def community(
    num_vertices: int,
    num_communities: int,
    avg_degree: float,
    intra_fraction: float = 0.9,
    seed: int = 0,
) -> Graph:
    """Planted-partition graph: dense blocks with a little inter-block glue.

    Vertex ``v`` belongs to community ``v % num_communities``; an
    ``intra_fraction`` of each vertex's edges land inside its community.
    Labels (set by the dataset loader) follow communities, giving the
    homophily real social graphs have and letting GNN accuracy climb.
    """
    if num_communities < 1:
        raise ValueError("need at least one community")
    rng = np.random.default_rng(seed)
    membership = np.arange(num_vertices, dtype=np.int64) % num_communities
    members = [np.where(membership == c)[0] for c in range(num_communities)]
    target_edges = int(num_vertices * avg_degree)
    collected_src = []
    collected_dst = []
    collected = 0
    # Dense blocks saturate the intra-community pair space, so sampling
    # with replacement loses many duplicates; keep drawing until we hit
    # the target (or stop making progress).
    for _ in range(8):
        remaining = target_edges - collected
        if remaining <= 0:
            break
        draw = int(remaining * 1.5) + 16
        dst = rng.integers(0, num_vertices, size=draw)
        intra = rng.random(draw) < intra_fraction
        src = np.empty(draw, dtype=np.int64)
        for c in range(num_communities):
            rows = np.where(intra & (membership[dst] == c))[0]
            src[rows] = rng.choice(members[c], size=len(rows))
        inter_rows = np.where(~intra)[0]
        src[inter_rows] = rng.integers(0, num_vertices, size=len(inter_rows))
        collected_src.append(src)
        collected_dst.append(dst)
        src_all = np.concatenate(collected_src)
        dst_all = np.concatenate(collected_dst)
        src_all, dst_all = _dedup(src_all, dst_all)
        before = collected
        collected = len(src_all)
        collected_src = [src_all]
        collected_dst = [dst_all]
        if collected == before:
            break
    src_all = collected_src[0][:target_edges]
    dst_all = collected_dst[0][:target_edges]
    g = Graph(num_vertices, src_all, dst_all, name="community")
    g.communities = membership
    return g


def scaled_social(
    num_vertices: int,
    avg_degree: float = 16.0,
    num_communities: int = 32,
    intra_fraction: float = 0.9,
    hub_exponent: float = 0.85,
    seed: int = 0,
) -> Graph:
    """Large community graph with power-law source popularity.

    One-shot vectorized generation (no per-community resampling
    rounds), so 10-100x the catalog vertex counts stay cheap: every
    edge picks a uniform destination, then a *Zipf-weighted* source —
    a member of the destination's community with probability
    ``intra_fraction``, a global vertex otherwise.  Vertex ``v``'s
    community is ``v % num_communities`` and its popularity rank is
    ``v // num_communities``, so low ids are hubs both globally and
    inside every community.

    The hub skew is what makes this the right testbed for sampled
    training: hubs land in many simultaneous candidate lists, which is
    exactly the regime where LABOR's shared per-source uniforms shrink
    the union frontier relative to independent uniform fanout.
    """
    if num_communities < 1:
        raise ValueError("need at least one community")
    rng = np.random.default_rng(seed)
    n = int(num_vertices)
    membership = np.arange(n, dtype=np.int64) % num_communities
    sizes = np.full(num_communities, n // num_communities, dtype=np.int64)
    sizes[: n % num_communities] += 1
    want = int(n * avg_degree * 1.15) + 16
    dst = rng.integers(0, n, size=want)
    # Zipf rank weights: member with local rank k has weight
    # (k+1)^-hub_exponent; inverse-CDF draw per edge, truncated to the
    # destination community's size.
    max_rank = int(sizes.max())
    cdf = np.cumsum(np.arange(1, max_rank + 1, dtype=np.float64) ** -hub_exponent)
    dst_sizes = sizes[membership[dst]]
    rank = np.searchsorted(cdf, rng.random(want) * cdf[dst_sizes - 1])
    rank = np.minimum(rank, dst_sizes - 1)
    src = rank.astype(np.int64) * num_communities + membership[dst]
    # Inter-community edges: a global Zipf draw over all vertex ids.
    inter = rng.random(want) >= intra_fraction
    n_inter = int(inter.sum())
    if n_inter:
        global_cdf = np.cumsum(
            np.arange(1, n + 1, dtype=np.float64) ** -hub_exponent
        )
        pick = np.searchsorted(
            global_cdf, rng.random(n_inter) * global_cdf[-1]
        )
        src[inter] = np.minimum(pick, n - 1)
    src, dst = _dedup(src, dst)
    target_edges = int(n * avg_degree)
    g = Graph(n, src[:target_edges], dst[:target_edges], name="scaled_social")
    g.communities = membership
    return g


def citation(
    num_vertices: int,
    avg_degree: float = 2.0,
    seed: int = 0,
) -> Graph:
    """Preferential-attachment DAG shaped like a citation network.

    Each new paper cites a few earlier papers, preferring already
    well-cited ones; degrees stay small and the graph is acyclic.
    """
    rng = np.random.default_rng(seed)
    cites_per_vertex = max(1, int(round(avg_degree)))
    src_list = []
    dst_list = []
    # Citation edges point new -> old; an in-edge of an old paper.
    attractiveness = np.ones(num_vertices, dtype=np.float64)
    for v in range(1, num_vertices):
        k = min(cites_per_vertex, v)
        weights = attractiveness[:v] / attractiveness[:v].sum()
        cited = rng.choice(v, size=k, replace=False, p=weights)
        for u in cited:
            src_list.append(v)
            dst_list.append(u)
            attractiveness[u] += 1.0
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    return Graph(num_vertices, src, dst, name="citation")


def ring(num_vertices: int) -> Graph:
    """Directed cycle 0 -> 1 -> ... -> 0 (one in-edge per vertex)."""
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return Graph(num_vertices, src, dst, name="ring")


def chain(num_vertices: int) -> Graph:
    """Directed path 0 -> 1 -> ... -> n-1."""
    src = np.arange(num_vertices - 1, dtype=np.int64)
    dst = src + 1
    return Graph(num_vertices, src, dst, name="chain")


def star(num_leaves: int, inward: bool = True) -> Graph:
    """Star graph; ``inward=True`` points leaves at the hub (vertex 0)."""
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    if inward:
        return Graph(num_leaves + 1, leaves, hub, name="star")
    return Graph(num_leaves + 1, hub, leaves, name="star")


def complete(num_vertices: int) -> Graph:
    """Complete directed graph without self loops."""
    grid_src, grid_dst = np.meshgrid(
        np.arange(num_vertices), np.arange(num_vertices), indexing="ij"
    )
    src = grid_src.reshape(-1)
    dst = grid_dst.reshape(-1)
    keep = src != dst
    return Graph(num_vertices, src[keep], dst[keep], name="complete")


def attach_features(
    graph: Graph,
    feature_dim: int,
    num_classes: int,
    seed: int = 0,
    class_signal: float = 1.0,
    label_noise: float = 0.0,
) -> Graph:
    """Synthesize features and labels on an existing structure.

    If the generator left a ``communities`` array on the graph, labels
    follow communities and features are class-mean Gaussians (learnable
    signal); otherwise labels are random and features pure noise, which
    is fine for the performance (non-accuracy) experiments.

    ``label_noise`` flips that fraction of labels to random classes,
    capping the achievable test accuracy below 100% the way real-world
    label ambiguity does (used to mimic Reddit's ~95% ceiling).
    """
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    membership = getattr(graph, "communities", None)
    if membership is not None:
        labels = membership % num_classes
    else:
        labels = rng.integers(0, num_classes, size=n)
    if label_noise > 0:
        flip = rng.random(n) < label_noise
        labels = np.where(flip, rng.integers(0, num_classes, size=n), labels)
    means = rng.standard_normal((num_classes, feature_dim)).astype(np.float32)
    noise = rng.standard_normal((n, feature_dim)).astype(np.float32)
    graph.features = class_signal * means[labels] + noise
    graph.labels = labels.astype(np.int64)
    graph.num_classes = num_classes
    graph.set_split(rng=rng)
    return graph
