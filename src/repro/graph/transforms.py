"""Graph transforms: the preprocessing utilities real pipelines need.

All transforms return new :class:`Graph` objects (or arrays) and leave
their input untouched, matching the style of
:meth:`Graph.gcn_normalized`.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro.graph.graph import Graph


def row_normalize_features(graph: Graph) -> Graph:
    """L1-normalise each feature row (the classic GCN preprocessing).

    Zero rows are left as zeros.
    """
    if graph.features is None:
        raise ValueError("graph has no features to normalise")
    sums = np.abs(graph.features).sum(axis=1, keepdims=True)
    scale = np.divide(
        1.0, sums, out=np.zeros_like(sums), where=sums > 0
    )
    out = _copy_with(graph, features=(graph.features * scale).astype(np.float32))
    return out


def add_degree_features(graph: Graph, log_scale: bool = True) -> Graph:
    """Append in/out-degree columns to the feature matrix.

    Degree features help models on graphs whose raw features are weak;
    ``log_scale`` applies ``log1p`` so hubs do not dominate.
    """
    if graph.features is None:
        raise ValueError("graph has no features to extend")
    in_deg = graph.in_degrees().astype(np.float32)
    out_deg = graph.out_degrees().astype(np.float32)
    if log_scale:
        in_deg, out_deg = np.log1p(in_deg), np.log1p(out_deg)
    extended = np.concatenate(
        [graph.features, in_deg[:, None], out_deg[:, None]], axis=1
    )
    return _copy_with(graph, features=extended.astype(np.float32))


def to_undirected(graph: Graph) -> Graph:
    """Add each edge's reverse (deduplicated); weights copied over."""
    src = np.concatenate([graph.src, graph.dst])
    dst = np.concatenate([graph.dst, graph.src])
    weight = np.concatenate([graph.edge_weight, graph.edge_weight])
    combined = src * graph.num_vertices + dst
    _, keep = np.unique(combined, return_index=True)
    keep.sort()
    return _copy_with(
        graph, src=src[keep], dst=dst[keep], edge_weight=weight[keep]
    )


def reverse_edges(graph: Graph) -> Graph:
    """Flip every edge's direction (in-neighbors become out-neighbors)."""
    return _copy_with(
        graph, src=graph.dst.copy(), dst=graph.src.copy(),
        edge_weight=graph.edge_weight.copy(),
    )


def largest_connected_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest weakly connected component.

    Returns ``(subgraph, old_ids)`` like :meth:`Graph.induced_subgraph`.
    """
    n = graph.num_vertices
    component = np.full(n, -1, dtype=np.int64)
    csr, csc = graph.csr, graph.csc
    current = 0
    for start in range(n):
        if component[start] >= 0:
            continue
        queue = deque([start])
        component[start] = current
        while queue:
            v = queue.popleft()
            for u in np.concatenate([csr.neighbors(v), csc.neighbors(v)]):
                if component[u] < 0:
                    component[u] = current
                    queue.append(int(u))
        current += 1
    sizes = np.bincount(component, minlength=current)
    biggest = int(np.argmax(sizes))
    return graph.induced_subgraph(np.where(component == biggest)[0])


def remove_self_loops(graph: Graph) -> Graph:
    """Drop all self loops (the inverse of :meth:`Graph.with_self_loops`)."""
    keep = graph.src != graph.dst
    return _copy_with(
        graph,
        src=graph.src[keep],
        dst=graph.dst[keep],
        edge_weight=graph.edge_weight[keep],
        edge_features=(
            graph.edge_features[keep]
            if graph.edge_features is not None else None
        ),
    )


def _copy_with(graph: Graph, **overrides) -> Graph:
    """Rebuild a Graph with some fields replaced; masks carried over.

    Callers that replace the edge set (``src`` in overrides) must pass a
    matching ``edge_weight`` and, if they want them kept, matching
    ``edge_features``; otherwise per-edge data are carried over as-is.
    """
    edges_changed = "src" in overrides
    if edges_changed:
        edge_weight = overrides["edge_weight"]
        edge_features = overrides.get("edge_features")
    else:
        edge_weight = overrides.get("edge_weight", graph.edge_weight.copy())
        edge_features = overrides.get("edge_features", graph.edge_features)
    out = Graph(
        graph.num_vertices,
        overrides.get("src", graph.src),
        overrides.get("dst", graph.dst),
        features=overrides.get("features", graph.features),
        labels=graph.labels,
        num_classes=graph.num_classes,
        edge_weight=edge_weight,
        edge_features=edge_features,
        name=graph.name,
    )
    out.train_mask = graph.train_mask
    out.val_mask = graph.val_mask
    out.test_mask = graph.test_mask
    return out
