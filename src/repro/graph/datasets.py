"""Dataset catalog mirroring the paper's Table 2, scaled to laptop size.

The paper's graphs (up to Twitter's 1.5 B edges) cannot be processed
here, so every dataset is regenerated synthetically at ~500-1000x fewer
vertices while preserving the properties that drive the
DepCache/DepComm tradeoff: average degree, degree skew, feature
dimension, hidden dimension, and label count.  ``paper_*`` fields record
the original sizes for EXPERIMENTS.md reporting.

Reddit is generated as a community graph (dense, homophilous) so the
accuracy experiment (Figure 14) genuinely converges; the small citation
networks (Cora/Citeseer/Pubmed) use a preferential-attachment DAG.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict

from repro.graph import generators
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 2 plus generation parameters."""

    name: str
    kind: str  # locality | community | citation | social
    num_vertices: int
    avg_degree: float
    feature_dim: int
    num_labels: int
    hidden_dim: int
    # Locality-model parameters (generators.locality_graph): smaller
    # width / global fraction means more chunk-local edges, which is
    # what makes a graph DepCache-friendly.
    locality_width: float = 0.01
    global_fraction: float = 0.3
    hub_exponent: float = 0.7
    num_communities: int = 0
    paper_vertices: str = ""
    paper_edges: str = ""
    paper_avg_degree: float = 0.0
    paper_labels: int = 0
    # Numeric paper vertex count, used for scale-corrected quadratic
    # memory terms (PyG's dense adjacency grows with V^2, so its scaled
    # stand-in is 4 * V * paper_V bytes; see engines.shared_memory).
    paper_num_vertices: int = 0

    @property
    def num_edges(self) -> int:
        return int(self.num_vertices * self.avg_degree)


# Scaled catalog.  Order follows Table 2.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # Web graph: very high locality, so chunk partitions have few
        # remote dependencies -> DepCache wins (Fig. 2a).
        DatasetSpec(
            name="google", kind="locality", num_vertices=3400, avg_degree=5.86,
            feature_dim=512, num_labels=16, hidden_dim=256,
            locality_width=0.01, global_fraction=0.4, hub_exponent=0.7,
            paper_vertices="0.87M", paper_edges="5.1M", paper_avg_degree=5.86,
            paper_num_vertices=870_000,
        ),
        # Social network: low locality, moderate degree -> DepComm wins.
        DatasetSpec(
            name="pokec", kind="locality", num_vertices=1600, avg_degree=18.75,
            feature_dim=512, num_labels=16, hidden_dim=256,
            locality_width=0.015, global_fraction=0.25, hub_exponent=0.7,
            paper_vertices="1.6M", paper_edges="30M", paper_avg_degree=18.75,
            paper_num_vertices=1_600_000,
        ),
        # Social network with strong geographic locality -> DepCache wins
        # narrowly (1.03X in the paper).
        DatasetSpec(
            name="livejournal", kind="locality", num_vertices=2400, avg_degree=14.12,
            feature_dim=320, num_labels=16, hidden_dim=160,
            locality_width=0.004, global_fraction=0.05, hub_exponent=0.7,
            paper_vertices="4.8M", paper_edges="68M", paper_avg_degree=14.12,
            paper_num_vertices=4_800_000,
        ),
        # Post-to-post graph: dense, homophilous, communities interleaved
        # across chunk boundaries -> DepComm wins by a large factor.
        # Paper Reddit has 41 labels; at this scale a 41-way planted
        # partition saturates the intra-community pair space, so the
        # scaled dataset uses 8 communities/classes (see DESIGN.md).
        DatasetSpec(
            name="reddit", kind="community", num_vertices=600, avg_degree=90.0,
            feature_dim=602, num_labels=8, hidden_dim=256, num_communities=8,
            paper_vertices="0.23M", paper_edges="114M", paper_avg_degree=487.0,
            paper_labels=41, paper_num_vertices=230_000,
        ),
        DatasetSpec(
            name="orkut", kind="locality", num_vertices=1550, avg_degree=38.1,
            feature_dim=320, num_labels=20, hidden_dim=160,
            locality_width=0.05, global_fraction=0.5, hub_exponent=0.6,
            paper_vertices="3.1M", paper_edges="117M", paper_avg_degree=38.1,
            paper_num_vertices=3_100_000,
        ),
        DatasetSpec(
            name="wiki", kind="locality", num_vertices=2000, avg_degree=31.12,
            feature_dim=256, num_labels=16, hidden_dim=128,
            locality_width=0.02, global_fraction=0.3, hub_exponent=0.8,
            paper_vertices="12M", paper_edges="378M", paper_avg_degree=31.12,
            paper_num_vertices=12_000_000,
        ),
        DatasetSpec(
            name="twitter", kind="locality", num_vertices=2600, avg_degree=70.5,
            feature_dim=52, num_labels=16, hidden_dim=32,
            locality_width=0.05, global_fraction=0.5, hub_exponent=0.9,
            paper_vertices="42M", paper_edges="1.5B", paper_avg_degree=70.5,
            paper_num_vertices=42_000_000,
        ),
        # Scaled-up social graph for the sampled mini-batch pipeline:
        # 12x the largest catalog graph, hub-skewed (Zipf sources), so
        # full-batch training is communication-bound and importance
        # samplers have overlapping candidate lists to exploit.
        DatasetSpec(
            name="social-large", kind="social", num_vertices=40960,
            avg_degree=16.0, feature_dim=64, num_labels=16, hidden_dim=64,
            num_communities=16, hub_exponent=0.85,
            paper_vertices="-", paper_edges="-", paper_avg_degree=16.0,
            paper_num_vertices=40_960,
        ),
        # Degree-skew endpoints of the scaled-social family, sized for
        # the tensor-parallel crossover sweep (`repro tp-sweep`):
        # near-uniform sources vs strongly Zipf-skewed hubs, otherwise
        # identical, so only partition imbalance separates them.
        DatasetSpec(
            name="social-flat", kind="social", num_vertices=3072,
            avg_degree=16.0, feature_dim=64, num_labels=16, hidden_dim=32,
            num_communities=8, hub_exponent=0.1,
            paper_vertices="-", paper_edges="-", paper_avg_degree=16.0,
            paper_num_vertices=3_072,
        ),
        DatasetSpec(
            name="social-skewed", kind="social", num_vertices=3072,
            avg_degree=16.0, feature_dim=64, num_labels=16, hidden_dim=32,
            num_communities=8, hub_exponent=1.2,
            paper_vertices="-", paper_edges="-", paper_avg_degree=16.0,
            paper_num_vertices=3_072,
        ),
        DatasetSpec(
            name="cora", kind="citation", num_vertices=1800, avg_degree=2.0,
            feature_dim=1000, num_labels=7, hidden_dim=128,
            paper_vertices="2.7K", paper_edges="5.4K", paper_avg_degree=2.0,
            paper_num_vertices=2_700,
        ),
        DatasetSpec(
            name="citeseer", kind="citation", num_vertices=1800, avg_degree=1.4,
            feature_dim=1200, num_labels=6, hidden_dim=128,
            paper_vertices="3.3K", paper_edges="4.7K", paper_avg_degree=1.4,
            paper_num_vertices=3_300,
        ),
        DatasetSpec(
            name="pubmed", kind="citation", num_vertices=800, avg_degree=2.2,
            feature_dim=500, num_labels=3, hidden_dim=128,
            paper_vertices="20K", paper_edges="44K", paper_avg_degree=2.2,
            paper_num_vertices=20_000,
        ),
    ]
}

# Aliases matching the paper's abbreviations.
_ALIASES = {
    "goo": "google", "pok": "pokec", "liv": "livejournal", "red": "reddit",
    "ork": "orkut", "wik": "wiki", "wiki-link": "wiki", "twi": "twitter",
    "cor": "cora", "cit": "citeseer", "pub": "pubmed",
}


def resolve_name(name: str) -> str:
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in DATASETS:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    return key


@functools.lru_cache(maxsize=None)
def _build(name: str, scale: float, seed: int) -> Graph:
    spec = DATASETS[name]
    n = max(16, int(spec.num_vertices * scale))
    m = max(n, int(n * spec.avg_degree))
    if spec.kind == "locality":
        g = generators.locality_graph(
            n,
            m,
            locality_width=spec.locality_width,
            global_fraction=spec.global_fraction,
            hub_exponent=spec.hub_exponent,
            seed=seed,
        )
    elif spec.kind == "community":
        g = generators.community(
            n, spec.num_communities or spec.num_labels, spec.avg_degree, seed=seed
        )
    elif spec.kind == "citation":
        g = generators.citation(n, avg_degree=spec.avg_degree, seed=seed)
    elif spec.kind == "social":
        g = generators.scaled_social(
            n,
            avg_degree=spec.avg_degree,
            num_communities=spec.num_communities or spec.num_labels,
            hub_exponent=spec.hub_exponent,
            seed=seed,
        )
    else:  # pragma: no cover - catalog is static
        raise ValueError(f"unknown generator kind {spec.kind!r}")
    g.name = name
    generators.attach_features(
        g, spec.feature_dim, spec.num_labels, seed=seed + 1,
        class_signal=0.6 if spec.kind in ("community", "social") else 0.5,
        label_noise=0.06 if spec.kind == "community" else 0.0,
    )
    return g


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Load (generate) a catalog dataset.

    ``scale`` multiplies the vertex count (benchmarks use ``scale < 1``
    for quick runs).  Results are cached per ``(name, scale, seed)``;
    callers must not mutate the returned graph -- use
    :meth:`Graph.gcn_normalized` and friends, which copy.
    """
    return _build(resolve_name(name), float(scale), int(seed))


def spec_of(name: str) -> DatasetSpec:
    """Catalog entry (scaled sizes + paper sizes) for ``name``."""
    return DATASETS[resolve_name(name)]
