"""Graph persistence: edge-list text files and .npz archives.

Two formats:

- **edge list** (``.txt``/``.tsv``): one ``src dst [weight]`` pair per
  line, ``#`` comments allowed -- the format SNAP distributes the
  paper's datasets in.  Structure only (no features/labels).
- **npz archive**: the full graph including features, labels, masks,
  and edge weights; lossless round trip.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.graph import Graph

PathLike = Union[str, Path]


def save_edge_list(graph: Graph, path: PathLike) -> Path:
    """Write ``src dst weight`` lines (tab-separated)."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for s, d, w in zip(graph.src, graph.dst, graph.edge_weight):
            handle.write(f"{s}\t{d}\t{w:.6g}\n")
    return path


def load_edge_list(
    path: PathLike, num_vertices: int = 0, name: str = ""
) -> Graph:
    """Parse an edge-list file.

    ``num_vertices`` defaults to ``max id + 1``.  A third column, when
    present, is read as the edge weight.
    """
    path = Path(path)
    src_list, dst_list, weight_list = [], [], []
    with path.open() as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: need at least src dst")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
            weight_list.append(float(parts[2]) if len(parts) > 2 else 1.0)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    n = num_vertices or (int(max(src.max(initial=-1), dst.max(initial=-1))) + 1)
    return Graph(
        n, src, dst,
        edge_weight=np.asarray(weight_list, dtype=np.float32),
        name=name or path.stem,
    )


def save_graph(graph: Graph, path: PathLike) -> Path:
    """Write the complete graph (structure + node data) to ``.npz``."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {
        "num_vertices": np.asarray(graph.num_vertices),
        "src": graph.src,
        "dst": graph.dst,
        "edge_weight": graph.edge_weight,
        "name": np.frombuffer(graph.name.encode("utf-8"), dtype=np.uint8).copy(),
    }
    if graph.features is not None:
        arrays["features"] = graph.features
    if graph.labels is not None:
        arrays["labels"] = graph.labels
        arrays["num_classes"] = np.asarray(graph.num_classes or 0)
    for mask_name in ("train_mask", "val_mask", "test_mask"):
        mask = getattr(graph, mask_name)
        if mask is not None:
            arrays[mask_name] = mask
    np.savez_compressed(path, **arrays)
    return path


def load_graph(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    path = Path(path)
    with np.load(path) as archive:
        graph = Graph(
            int(archive["num_vertices"]),
            archive["src"],
            archive["dst"],
            features=archive["features"] if "features" in archive else None,
            labels=archive["labels"] if "labels" in archive else None,
            num_classes=(
                int(archive["num_classes"]) if "num_classes" in archive else None
            ),
            edge_weight=archive["edge_weight"],
            name=bytes(archive["name"]).decode("utf-8"),
        )
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            if mask_name in archive:
                setattr(graph, mask_name, archive[mask_name])
    return graph
