"""K-hop dependency closures (Algorithm 2's BFS retrieval).

DepCache needs, for a worker's vertex set ``V_i``, the chain of in-
neighborhoods ``V_i = V^L ⊇-expansion V^{L-1} ... V^0`` together with
the per-layer in-edge sets.  These helpers compute that closure and the
derived quantities the cost model needs (per-dependency subtree sizes,
replication factors).

All frontier bookkeeping runs on boolean masks over the vertex space:
each hop selects only the *new* frontier (never the cumulative set) and
merges it into a ``seen`` mask, so a closure costs O(edges reached)
instead of the old ``union1d``-chain's O(hops x closure size).  The
mask-derived layers (``np.flatnonzero`` of a monotone mask) are sorted
unique arrays, element-identical to the ``union1d`` results.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph

_EMPTY = np.empty(0, dtype=np.int64)


def khop_closure(
    graph: Graph, seeds: np.ndarray, hops: int
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """BFS closure of in-neighborhoods.

    Returns ``(vertex_layers, edge_layers)`` where ``vertex_layers[t]``
    is the union of ``seeds`` with all vertices reachable by following
    up to ``t`` in-edges backwards (so ``vertex_layers[0]`` is the seed
    set), and ``edge_layers[t]`` holds the edge ids of all in-edges of
    ``vertex_layers[t]`` (the edges executed at layer ``L - t``).
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    vertex_layers = [seeds]
    edge_layers: List[np.ndarray] = []
    csc = graph.csc
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[seeds] = True
    frontier = seeds
    edges_so_far = _EMPTY
    for _ in range(hops):
        # Only the new frontier needs expanding: the cumulative set's
        # other edges were already collected on earlier hops.
        _, sources, eids = csc.select(frontier)
        edges_so_far = np.sort(np.concatenate([edges_so_far, eids]))
        edge_layers.append(edges_so_far)
        new_mask = np.zeros(graph.num_vertices, dtype=bool)
        new_mask[sources] = True
        new_mask &= ~seen
        frontier = np.flatnonzero(new_mask)
        seen |= new_mask
        vertex_layers.append(np.flatnonzero(seen))
    return vertex_layers, edge_layers


def dependency_layers(
    graph: Graph, owned: np.ndarray, num_layers: int
) -> List[np.ndarray]:
    """Remote dependent neighbors per layer (the paper's ``D_i^l``).

    ``owned`` is the worker's vertex set ``V_i``.  The returned list is
    indexed ``[l-1]`` for layers ``l = 1..num_layers``: entry ``l-1``
    holds the remote vertices whose layer-``(l-1)`` representation the
    worker needs as input to its layer-``l`` computation, assuming all
    deeper dependencies were handled by communication (each layer's
    frontier is the direct in-neighborhood of ``V_i`` in that case).

    With pure DepComm every layer has the same dependency set --- the
    remote direct in-neighbors of ``V_i`` --- which is exactly what this
    returns for each layer.
    """
    owned = np.unique(np.asarray(owned, dtype=np.int64))
    owned_mask = np.zeros(graph.num_vertices, dtype=bool)
    owned_mask[owned] = True
    _, sources, _ = graph.csc.select(owned)
    remote_mask = np.zeros(graph.num_vertices, dtype=bool)
    remote_mask[sources] = True
    remote_mask &= ~owned_mask
    remote = np.flatnonzero(remote_mask)
    return [remote.copy() for _ in range(num_layers)]


def limited_bfs_in(
    graph: Graph, roots: Sequence[int], depth: int
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Per-step in-BFS from ``roots`` (not cumulative).

    Returns ``(vertex_steps, edge_steps)``: ``vertex_steps[0]`` is the
    root set; ``vertex_steps[t]`` the frontier of new vertices first
    reached at step ``t``; ``edge_steps[t]`` the in-edges traversed at
    step ``t+1`` (in-edges of everything seen so far at that depth).
    Used by the cost model to size a dependency's recomputation subtree.
    """
    roots = np.unique(np.asarray(roots, dtype=np.int64))
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[roots] = True
    vertex_steps = [roots]
    edge_steps: List[np.ndarray] = []
    frontier = roots
    csc = graph.csc
    for _ in range(depth):
        _, sources, eids = csc.select(frontier)
        edge_steps.append(eids)
        new_mask = np.zeros(graph.num_vertices, dtype=bool)
        new_mask[sources] = True
        new_mask &= ~seen
        new = np.flatnonzero(new_mask)
        seen |= new_mask
        vertex_steps.append(new)
        frontier = new
        if len(new) == 0 and len(eids) == 0:
            # Keep filling with empties so callers can index by depth.
            for _ in range(depth - len(edge_steps)):
                edge_steps.append(np.empty(0, dtype=np.int64))
                vertex_steps.append(np.empty(0, dtype=np.int64))
            break
    return vertex_steps, edge_steps


def replication_factor(
    graph: Graph, parts: Sequence[np.ndarray], hops: int
) -> float:
    """Average number of workers holding each vertex under DepCache.

    A replication factor of 1.0 means no redundancy; ``m`` means every
    worker caches the whole graph (what happens on dense graphs like
    Reddit, and why DepCache loses there).
    """
    total = 0
    for part in parts:
        layers, _ = khop_closure(graph, part, hops)
        total += len(layers[-1])
    return total / max(graph.num_vertices, 1)
