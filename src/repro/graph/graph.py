"""The in-memory graph: COO edges + lazily-built CSR/CSC + node data.

A :class:`Graph` carries everything Algorithm 1 needs: the edge list,
per-vertex features ``h^(0)``, labels, train/val/test masks, and
(optionally) per-edge weights.  CSR groups edges by source (used for
backward scatter, ``GatherBySrc``); CSC groups them by destination
(forward ``GatherByDst``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.adjacency import Adjacency


class Graph:
    """A directed graph with node features and labels.

    Edges point ``src -> dst``; a GNN layer aggregates over *in*-edges,
    i.e. vertex ``v`` reads the representations of the sources of edges
    ``(u, v)``, exactly as in the paper's Algorithm 1.
    """

    def __init__(
        self,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        num_classes: Optional[int] = None,
        edge_weight: Optional[np.ndarray] = None,
        edge_features: Optional[np.ndarray] = None,
        name: str = "graph",
    ):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src/dst must be 1-D arrays of equal length")
        if len(src) and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("src vertex id out of range")
        if len(dst) and (dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("dst vertex id out of range")
        self.num_vertices = int(num_vertices)
        self.src = src
        self.dst = dst
        self.name = name
        self.features = features
        self.labels = labels
        self.num_classes = num_classes
        self.edge_weight = (
            edge_weight.astype(np.float32)
            if edge_weight is not None
            else np.ones(len(src), dtype=np.float32)
        )
        if edge_features is not None and len(edge_features) != len(src):
            raise ValueError("edge_features must have one row per edge")
        self.edge_features = edge_features
        self.train_mask: Optional[np.ndarray] = None
        self.val_mask: Optional[np.ndarray] = None
        self.test_mask: Optional[np.ndarray] = None
        self._csr: Optional[Adjacency] = None
        self._csc: Optional[Adjacency] = None

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.src)

    @property
    def feature_dim(self) -> int:
        if self.features is None:
            raise ValueError(f"graph {self.name!r} has no features")
        return self.features.shape[1]

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(self.num_vertices, 1)

    @property
    def csr(self) -> Adjacency:
        """Edges grouped by source vertex."""
        if self._csr is None:
            self._csr = Adjacency(self.src, self.dst, self.num_vertices)
        return self._csr

    @property
    def csc(self) -> Adjacency:
        """Edges grouped by destination vertex."""
        if self._csc is None:
            self._csc = Adjacency(self.dst, self.src, self.num_vertices)
        return self._csc

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.num_vertices)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_vertices)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_self_loops(self) -> "Graph":
        """Return a copy with one self-loop added to every vertex.

        Existing self-loops are kept; GCN normalisation assumes each
        vertex sees its own previous representation.
        """
        loops = np.arange(self.num_vertices, dtype=np.int64)
        has_loop = np.zeros(self.num_vertices, dtype=bool)
        has_loop[self.src[self.src == self.dst]] = True
        new_loops = loops[~has_loop]
        src = np.concatenate([self.src, new_loops])
        dst = np.concatenate([self.dst, new_loops])
        weight = np.concatenate(
            [self.edge_weight, np.ones(len(new_loops), dtype=np.float32)]
        )
        edge_features = None
        if self.edge_features is not None:
            # Self loops carry zero edge features.
            pad = np.zeros(
                (len(new_loops), self.edge_features.shape[1]),
                dtype=self.edge_features.dtype,
            )
            edge_features = np.concatenate([self.edge_features, pad])
        out = Graph(
            self.num_vertices,
            src,
            dst,
            features=self.features,
            labels=self.labels,
            num_classes=self.num_classes,
            edge_weight=weight,
            edge_features=edge_features,
            name=self.name,
        )
        out.train_mask = self.train_mask
        out.val_mask = self.val_mask
        out.test_mask = self.test_mask
        return out

    def gcn_normalized(self) -> "Graph":
        """Self-loops + symmetric normalisation 1/sqrt(d_u * d_v).

        This is the weighting GCN (Kipf & Welling) applies; engines use
        these edge weights so that DepCache, DepComm, and Hybrid compute
        bit-identical representations.
        """
        g = self.with_self_loops()
        deg = g.in_degrees().astype(np.float64)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
        g.edge_weight = (inv_sqrt[g.src] * inv_sqrt[g.dst]).astype(np.float32)
        return g

    def set_split(
        self,
        train_fraction: float = 0.6,
        val_fraction: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Assign boolean train/val/test masks over labelled vertices."""
        if not 0 < train_fraction < 1 or not 0 <= val_fraction < 1:
            raise ValueError("invalid split fractions")
        if train_fraction + val_fraction >= 1:
            raise ValueError("train + val fractions must leave room for test")
        rng = rng or np.random.default_rng(0)
        order = rng.permutation(self.num_vertices)
        n_train = int(self.num_vertices * train_fraction)
        n_val = int(self.num_vertices * val_fraction)
        self.train_mask = np.zeros(self.num_vertices, dtype=bool)
        self.val_mask = np.zeros(self.num_vertices, dtype=bool)
        self.test_mask = np.zeros(self.num_vertices, dtype=bool)
        self.train_mask[order[:n_train]] = True
        self.val_mask[order[n_train : n_train + n_val]] = True
        self.test_mask[order[n_train + n_val :]] = True

    def induced_subgraph(self, vertices: np.ndarray) -> Tuple["Graph", np.ndarray]:
        """Subgraph on ``vertices`` with relabelled ids.

        Returns the subgraph and the old-id array such that new id ``i``
        corresponds to old id ``vertices_sorted[i]``.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        lookup = np.full(self.num_vertices, -1, dtype=np.int64)
        lookup[vertices] = np.arange(len(vertices))
        keep = (lookup[self.src] >= 0) & (lookup[self.dst] >= 0)
        sub = Graph(
            len(vertices),
            lookup[self.src[keep]],
            lookup[self.dst[keep]],
            features=self.features[vertices] if self.features is not None else None,
            labels=self.labels[vertices] if self.labels is not None else None,
            num_classes=self.num_classes,
            edge_weight=self.edge_weight[keep],
            edge_features=(
                self.edge_features[keep]
                if self.edge_features is not None
                else None
            ),
            name=f"{self.name}[sub]",
        )
        return sub, vertices

    # ------------------------------------------------------------------
    # Size accounting (memory model, Section 3's constraint S)
    # ------------------------------------------------------------------
    def feature_bytes(self) -> int:
        if self.features is None:
            return 0
        return int(self.features.nbytes)

    def structure_bytes(self) -> int:
        return int(self.src.nbytes + self.dst.nbytes + self.edge_weight.nbytes)

    def stats(self) -> Dict[str, float]:
        """Summary statistics used by reports and tests."""
        in_deg = self.in_degrees()
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "avg_degree": self.avg_degree,
            "max_in_degree": int(in_deg.max()) if self.num_vertices else 0,
            "feature_dim": self.features.shape[1] if self.features is not None else 0,
        }
