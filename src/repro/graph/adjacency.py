"""Compressed sparse adjacency (CSR/CSC) built from COO edge lists.

The paper stores each chunk of edges in CSC for forward computation and
CSR for backward computation (Section 4.3).  :class:`Adjacency` is the
shared index structure: a permutation of edge ids grouped by a key
vertex (source for CSR, destination for CSC) with an ``indptr`` offset
array, so per-vertex edge ranges are O(1) slices.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Adjacency:
    """Edge ids grouped by a key vertex array.

    Parameters
    ----------
    key:
        Per-edge grouping vertex (``src`` for CSR, ``dst`` for CSC).
    other:
        The opposite endpoint of each edge.
    num_vertices:
        Total number of vertices (indptr length - 1).
    """

    def __init__(self, key: np.ndarray, other: np.ndarray, num_vertices: int):
        if len(key) != len(other):
            raise ValueError("key and other must have equal length")
        order = np.argsort(key, kind="stable")
        self.num_vertices = int(num_vertices)
        self.edge_ids = order.astype(np.int64)
        self.key = key[order]
        self.other = other[order]
        counts = np.bincount(key, minlength=num_vertices)
        self.indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )

    @property
    def num_edges(self) -> int:
        return len(self.key)

    def degree(self, vertex: int) -> int:
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Opposite endpoints of ``vertex``'s grouped edges."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        return self.other[lo:hi]

    def edges_of(self, vertex: int) -> np.ndarray:
        """Original edge ids of ``vertex``'s grouped edges."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        return self.edge_ids[lo:hi]

    def neighbors_of_set(self, vertices: np.ndarray) -> np.ndarray:
        """Unique opposite endpoints over a vertex set (BFS frontier step)."""
        if len(vertices) == 0:
            return np.empty(0, dtype=np.int64)
        idx = self._edge_range_index(np.asarray(vertices, dtype=np.int64))
        return np.unique(self.other[idx])

    def _edge_range_index(self, vertices: np.ndarray) -> np.ndarray:
        """Flat positions of every grouped edge of ``vertices``.

        One offset-arithmetic gather over ``indptr`` replaces the old
        per-vertex list of slices: the i-th vertex's CSR range
        ``[indptr[v], indptr[v+1])`` lands contiguously at output offset
        ``cumsum(counts)[i-1]``, preserving per-vertex order.
        """
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.cumsum(counts) - counts
        return np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, counts
        )

    def select(self, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All grouped edges of a vertex set.

        Returns ``(key_vertices, other_vertices, edge_ids)`` concatenated
        over the set, preserving per-vertex order.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (
                np.empty(0, dtype=self.key.dtype),
                np.empty(0, dtype=self.other.dtype),
                np.empty(0, dtype=self.edge_ids.dtype),
            )
        offsets = np.cumsum(counts) - counts
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, counts
        )
        # The grouped key of every edge in vertex v's range IS v, so the
        # key gather collapses to a repeat of the query vertices.
        keys = np.repeat(vertices, counts).astype(self.key.dtype, copy=False)
        return keys, self.other[idx], self.edge_ids[idx]
