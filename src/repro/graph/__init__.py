"""Graph storage, generators, and the paper's dataset catalog."""

from repro.graph.graph import Graph
from repro.graph.adjacency import Adjacency
from repro.graph import generators
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.khop import khop_closure, dependency_layers

__all__ = [
    "Graph",
    "Adjacency",
    "generators",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "khop_closure",
    "dependency_layers",
]
