"""Graph partitioners (Section 5.7's chunk / Metis / Fennel comparison)."""

from repro.partition.base import Partitioning
from repro.partition.chunk import chunk_partition
from repro.partition.hashing import hash_partition
from repro.partition.fennel import fennel_partition
from repro.partition.metis_like import metis_like_partition
from repro.partition.vertex_cut import (
    ReassignmentPlan,
    VertexCut,
    absorb_partition,
    destination_vertex_cut,
    greedy_vertex_cut,
)

_PARTITIONERS = {
    "chunk": chunk_partition,
    "hash": hash_partition,
    "fennel": fennel_partition,
    "metis": metis_like_partition,
}


def get_partitioner(name: str):
    """Look up a partitioner by name (chunk | hash | fennel | metis)."""
    try:
        return _PARTITIONERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_PARTITIONERS))
        raise KeyError(f"unknown partitioner {name!r}; known: {known}") from None


__all__ = [
    "Partitioning",
    "chunk_partition",
    "hash_partition",
    "fennel_partition",
    "metis_like_partition",
    "VertexCut",
    "ReassignmentPlan",
    "absorb_partition",
    "greedy_vertex_cut",
    "destination_vertex_cut",
    "get_partitioner",
]
