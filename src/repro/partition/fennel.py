"""Fennel streaming partitioning (Tsourakakis et al., WSDM 2014).

Vertices arrive in a stream; each is greedily placed on the worker
maximising ``|N(v) ∩ P_i| - alpha * gamma * |P_i|^(gamma-1)``, i.e.
neighbor co-location reward minus a superlinear size penalty.  A hard
capacity cap keeps the result loadable.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import Partitioning


def fennel_partition(
    graph: Graph,
    num_parts: int,
    gamma: float = 1.5,
    slack: float = 1.1,
    order: str = "bfs",
    seed: int = 0,
) -> Partitioning:
    """Stream vertices and place each on the best-scoring worker.

    ``order`` controls the stream: ``"bfs"`` (default, gives Fennel its
    locality advantage), ``"sequential"``, or ``"random"``.
    ``slack`` is the balance cap: no worker exceeds
    ``slack * |V| / num_parts`` vertices.
    """
    n = graph.num_vertices
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    if num_parts > n:
        raise ValueError("more parts than vertices")
    m = graph.num_edges
    alpha = (m * num_parts ** (gamma - 1.0)) / max(n ** gamma, 1.0) + 1e-9
    capacity = int(np.ceil(slack * n / num_parts))

    stream = _stream_order(graph, order, seed)
    assignment = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_parts, dtype=np.int64)
    csr, csc = graph.csr, graph.csc

    for v in stream:
        # Count already-placed neighbors (both edge directions matter
        # for co-location).
        neighbor_ids = np.concatenate([csr.neighbors(v), csc.neighbors(v)])
        placed = assignment[neighbor_ids]
        placed = placed[placed >= 0]
        reward = np.bincount(placed, minlength=num_parts).astype(np.float64)
        penalty = alpha * gamma * np.power(sizes.astype(np.float64), gamma - 1.0)
        score = reward - penalty
        score[sizes >= capacity] = -np.inf
        best = int(np.argmax(score))
        assignment[v] = best
        sizes[best] += 1
    return Partitioning(assignment, num_parts=num_parts, method="fennel")


def _stream_order(graph: Graph, order: str, seed: int) -> np.ndarray:
    n = graph.num_vertices
    if order == "sequential":
        return np.arange(n, dtype=np.int64)
    if order == "random":
        return np.random.default_rng(seed).permutation(n).astype(np.int64)
    if order == "bfs":
        return _bfs_order(graph, seed)
    raise ValueError(f"unknown stream order {order!r}")


def _bfs_order(graph: Graph, seed: int) -> np.ndarray:
    """BFS over the undirected skeleton, restarting on new components."""
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    csr, csc = graph.csr, graph.csc
    idx = 0
    for start in rng.permutation(n):
        if visited[start]:
            continue
        queue = [int(start)]
        visited[start] = True
        while queue:
            v = queue.pop(0)
            order[idx] = v
            idx += 1
            neighbors = np.concatenate([csr.neighbors(v), csc.neighbors(v)])
            for u in neighbors:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
    return order
