"""Metis-like partitioning: multi-seed BFS growth + greedy refinement.

A faithful Metis implementation (multilevel coarsening) is out of scope;
this partitioner reproduces the *behaviour* Figure 15 needs: a
balanced, low-edge-cut partitioning that is better than chunking on
locality-poor graphs.  It grows ``m`` regions from spread-out seeds by
BFS and then runs boundary-vertex Kernighan-Lin-style refinement passes
that move vertices to the neighboring part with the largest edge-cut
gain, subject to a balance constraint.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import Partitioning


def metis_like_partition(
    graph: Graph,
    num_parts: int,
    refinement_passes: int = 4,
    slack: float = 1.05,
    seed: int = 0,
) -> Partitioning:
    """Grow ``m`` BFS regions, then refine the boundary greedily."""
    n = graph.num_vertices
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    if num_parts > n:
        raise ValueError("more parts than vertices")
    assignment = _bfs_grow(graph, num_parts, seed)
    capacity = int(np.ceil(slack * n / num_parts))
    for _ in range(refinement_passes):
        moved = _refine_pass(graph, assignment, num_parts, capacity)
        if moved == 0:
            break
    return Partitioning(assignment, num_parts=num_parts, method="metis")


def _undirected_neighbors(graph: Graph, v: int) -> np.ndarray:
    return np.concatenate([graph.csr.neighbors(v), graph.csc.neighbors(v)])


def _bfs_grow(graph: Graph, num_parts: int, seed: int) -> np.ndarray:
    """Round-robin BFS from ``num_parts`` spread seeds (balanced growth)."""
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    assignment = np.full(n, -1, dtype=np.int64)
    seeds = _spread_seeds(graph, num_parts, rng)
    queues: List[deque] = [deque([int(s)]) for s in seeds]
    for part, s in enumerate(seeds):
        assignment[s] = part
    sizes = np.ones(num_parts, dtype=np.int64)
    target = int(np.ceil(n / num_parts))
    active = True
    while active:
        active = False
        # Smallest part grows first, keeping sizes near-equal.
        for part in np.argsort(sizes):
            queue = queues[part]
            grown = False
            while queue and not grown:
                v = queue.popleft()
                for u in _undirected_neighbors(graph, v):
                    if assignment[u] < 0:
                        assignment[u] = part
                        sizes[part] += 1
                        queue.append(int(u))
                        grown = True
                        if sizes[part] >= target:
                            break
                if grown:
                    queue.appendleft(v)  # v may have more unvisited neighbors
            if grown:
                active = True
    # Unreached vertices (isolated components): fill smallest parts.
    for v in np.where(assignment < 0)[0]:
        part = int(np.argmin(sizes))
        assignment[v] = part
        sizes[part] += 1
    return assignment


def _spread_seeds(graph: Graph, num_parts: int, rng) -> np.ndarray:
    """Pick far-apart seeds by repeated farthest-point BFS."""
    n = graph.num_vertices
    seeds = [int(rng.integers(n))]
    for _ in range(num_parts - 1):
        dist = _multi_source_bfs(graph, seeds)
        # Unreached vertices (inf) are the farthest possible.
        candidate = int(np.argmax(np.where(np.isfinite(dist), dist, np.inf)))
        if candidate in seeds:
            candidate = int(rng.integers(n))
        seeds.append(candidate)
    return np.asarray(seeds, dtype=np.int64)


def _multi_source_bfs(graph: Graph, sources: List[int]) -> np.ndarray:
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    queue = deque()
    for s in sources:
        dist[s] = 0.0
        queue.append(s)
    while queue:
        v = queue.popleft()
        for u in _undirected_neighbors(graph, v):
            if dist[u] == np.inf:
                dist[u] = dist[v] + 1.0
                queue.append(int(u))
    return dist


def _refine_pass(
    graph: Graph, assignment: np.ndarray, num_parts: int, capacity: int
) -> int:
    """One KL-style boundary sweep; returns the number of moves made."""
    sizes = np.bincount(assignment, minlength=num_parts)
    moved = 0
    boundary = np.where(
        assignment[graph.src] != assignment[graph.dst]
    )[0]
    candidates = np.unique(
        np.concatenate([graph.src[boundary], graph.dst[boundary]])
    )
    for v in candidates:
        home = assignment[v]
        if sizes[home] <= 1:
            continue
        neighbor_parts = assignment[_undirected_neighbors(graph, int(v))]
        counts = np.bincount(neighbor_parts, minlength=num_parts)
        counts_home = counts[home]
        counts[home] = -1  # never "move" to the current part
        best = int(np.argmax(counts))
        gain = counts[best] - counts_home
        if gain > 0 and sizes[best] < capacity:
            assignment[v] = best
            sizes[home] -= 1
            sizes[best] += 1
            moved += 1
    return moved
