"""Greedy vertex-cut (edge) partitioning, PowerGraph-style.

NeutronStar's master-mirror design (Section 4.2) comes from the
vertex-cut world: edges are assigned to workers and a vertex spanning
several workers has one *master* plus *mirrors*.  The main engines use
edge-follows-destination placement (a special vertex-cut), but this
module provides the general greedy heuristic for analysis and as a
quality baseline: it picks, per edge, the worker that already hosts
both endpoints, then one endpoint, then the least-loaded worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import Partitioning


@dataclass
class VertexCut:
    """An edge assignment with master/mirror bookkeeping.

    Attributes
    ----------
    edge_assignment:
        ``edge_assignment[e]`` = worker executing edge ``e``.
    masters:
        ``masters[v]`` = the worker holding vertex ``v``'s master copy.
    num_parts:
        Worker count ``m``.
    """

    edge_assignment: np.ndarray
    masters: np.ndarray
    num_parts: int

    def replication_factor(self, graph: Graph) -> float:
        """Average number of workers hosting a copy of each vertex."""
        total_copies = 0
        for v in range(graph.num_vertices):
            total_copies += len(self.workers_of(graph, v))
        return total_copies / max(graph.num_vertices, 1)

    def workers_of(self, graph: Graph, vertex: int) -> np.ndarray:
        """All workers holding a copy (master or mirror) of ``vertex``."""
        touching = np.concatenate([
            self.edge_assignment[graph.csr.edges_of(vertex)],
            self.edge_assignment[graph.csc.edges_of(vertex)],
        ])
        if len(touching) == 0:
            return np.asarray([self.masters[vertex]])
        return np.unique(np.append(touching, self.masters[vertex]))

    def mirror_count(self, graph: Graph) -> int:
        """Total mirrors (copies beyond the master) across all vertices."""
        return int(
            sum(len(self.workers_of(graph, v)) - 1
                for v in range(graph.num_vertices))
        )

    def edge_balance(self) -> float:
        loads = np.bincount(self.edge_assignment, minlength=self.num_parts)
        ideal = len(self.edge_assignment) / self.num_parts
        return float(loads.max() / ideal) if ideal else 1.0


def greedy_vertex_cut(
    graph: Graph, num_parts: int, seed: int = 0
) -> VertexCut:
    """PowerGraph's greedy heuristic over a random edge stream."""
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    rng = np.random.default_rng(seed)
    m = num_parts
    # replicas[v] = bitmask of workers already hosting v.
    replicas = np.zeros((graph.num_vertices, m), dtype=bool)
    loads = np.zeros(m, dtype=np.int64)
    assignment = np.empty(graph.num_edges, dtype=np.int64)
    order = rng.permutation(graph.num_edges)
    for e in order:
        u, v = int(graph.src[e]), int(graph.dst[e])
        both = replicas[u] & replicas[v]
        either = replicas[u] | replicas[v]
        if both.any():
            candidates = np.where(both)[0]
        elif either.any():
            candidates = np.where(either)[0]
        else:
            candidates = np.arange(m)
        target = int(candidates[np.argmin(loads[candidates])])
        assignment[e] = target
        replicas[u, target] = True
        replicas[v, target] = True
        loads[target] += 1
    # Master = the hosting worker with the fewest masters so far
    # (ties by lowest id); isolated vertices go to the least loaded.
    masters = np.empty(graph.num_vertices, dtype=np.int64)
    master_loads = np.zeros(m, dtype=np.int64)
    for v in range(graph.num_vertices):
        hosts = np.where(replicas[v])[0]
        if len(hosts) == 0:
            hosts = np.arange(m)
        masters[v] = int(hosts[np.argmin(master_loads[hosts])])
        master_loads[masters[v]] += 1
    return VertexCut(assignment, masters, m)


@dataclass(frozen=True)
class ReassignmentPlan:
    """Deterministic plan for survivors absorbing a dead worker's vertices.

    Emitted by :func:`absorb_partition` when a worker leaves the cluster
    permanently (elastic shrink, :mod:`repro.resilience.elastic`).  The
    plan is pure data so the same crash always produces the same
    reshaped partitioning and the same migration traffic.

    Attributes
    ----------
    dead_worker:
        The departing worker, in the *old* numbering.
    old_num_workers / new_num_workers:
        Cluster sizes before and after the shrink.
    worker_map:
        ``{old_id: new_id}`` for every survivor (the dead worker is
        absent; survivors keep their relative order).
    moved:
        Global vertex ids that change owner, ascending.
    targets:
        ``targets[i]`` is the *new* worker id absorbing ``moved[i]``.
    """

    dead_worker: int
    old_num_workers: int
    worker_map: Dict[int, int]
    moved: np.ndarray
    targets: np.ndarray

    @property
    def new_num_workers(self) -> int:
        return self.old_num_workers - 1

    def new_id(self, old_worker: int) -> int:
        """Map a surviving worker's old id to its new id."""
        return self.worker_map[old_worker]

    def old_id(self, new_worker: int) -> int:
        """Map a new worker id back to the old numbering."""
        for old, new in self.worker_map.items():
            if new == new_worker:
                return old
        raise KeyError(new_worker)


def absorb_partition(
    partitioning: Partitioning, dead_worker: int
) -> Tuple[ReassignmentPlan, Partitioning]:
    """Shrink a vertex partitioning: survivors absorb ``dead_worker``.

    The dead worker's vertices are dealt, in ascending id order, each to
    the survivor with the fewest vertices so far (ties to the lowest new
    id) -- a deterministic balance-greedy that keeps the reshaped
    partitioning's vertex balance close to the original's.  Survivors
    keep their own vertices and their relative order; worker ids are
    renumbered ``0 .. m-2``.
    """
    m = partitioning.num_parts
    if m < 2:
        raise ValueError("cannot shrink a single-worker partitioning")
    if not 0 <= dead_worker < m:
        raise ValueError(f"dead worker {dead_worker} not in 0..{m - 1}")
    survivors = [w for w in range(m) if w != dead_worker]
    worker_map = {old: new for new, old in enumerate(survivors)}
    assignment = partitioning.assignment
    new_assignment = np.empty_like(assignment)
    for old, new in worker_map.items():
        new_assignment[assignment == old] = new
    moved = np.where(assignment == dead_worker)[0]
    loads = np.bincount(
        new_assignment[assignment != dead_worker], minlength=m - 1
    ).astype(np.int64)
    targets = np.empty(len(moved), dtype=np.int64)
    for i, v in enumerate(moved):
        target = int(np.argmin(loads))
        new_assignment[v] = target
        targets[i] = target
        loads[target] += 1
    plan = ReassignmentPlan(
        dead_worker=dead_worker,
        old_num_workers=m,
        worker_map=worker_map,
        moved=moved,
        targets=targets,
    )
    reshaped = Partitioning(
        new_assignment,
        num_parts=m - 1,
        method=f"{partitioning.method}-absorb{dead_worker}",
    )
    return plan, reshaped


def destination_vertex_cut(graph: Graph, assignment: np.ndarray) -> VertexCut:
    """The engines' implicit vertex-cut: edges follow their destination.

    ``assignment`` is a vertex-to-worker map (a
    :class:`~repro.partition.base.Partitioning` assignment); the
    returned cut places every edge on its destination's worker with the
    destination as master.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    return VertexCut(
        edge_assignment=assignment[graph.dst],
        masters=assignment.copy(),
        num_parts=int(assignment.max()) + 1 if len(assignment) else 1,
    )
