"""Partitioning result type and quality metrics.

Every partitioner returns a :class:`Partitioning`: an assignment of
vertices to ``m`` workers.  Edges follow their destination (the paper
assigns each vertex's *in*-edges to its worker, Algorithm 2/3 line 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph


@dataclass
class Partitioning:
    """Assignment of vertices to workers.

    Attributes
    ----------
    assignment:
        ``assignment[v]`` is the worker owning vertex ``v``.
    num_parts:
        Number of workers ``m``.
    method:
        Name of the partitioner that produced this assignment.
    """

    assignment: np.ndarray
    num_parts: int
    method: str = "unknown"
    _parts: List[np.ndarray] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if len(self.assignment) == 0:
            raise ValueError("empty assignment")
        if self.assignment.min() < 0 or self.assignment.max() >= self.num_parts:
            raise ValueError("assignment references a worker out of range")

    @property
    def num_vertices(self) -> int:
        return len(self.assignment)

    def part(self, i: int) -> np.ndarray:
        """Vertex ids owned by worker ``i`` (ascending)."""
        if not self._parts:
            self._parts = [
                np.where(self.assignment == p)[0] for p in range(self.num_parts)
            ]
        return self._parts[i]

    def parts(self) -> List[np.ndarray]:
        return [self.part(i) for i in range(self.num_parts)]

    def owner(self, vertex: int) -> int:
        return int(self.assignment[vertex])

    # ------------------------------------------------------------------
    # Quality metrics
    # ------------------------------------------------------------------
    def edge_cut(self, graph: Graph) -> int:
        """Number of edges whose endpoints live on different workers."""
        return int((self.assignment[graph.src] != self.assignment[graph.dst]).sum())

    def edge_cut_fraction(self, graph: Graph) -> float:
        if graph.num_edges == 0:
            return 0.0
        return self.edge_cut(graph) / graph.num_edges

    def vertex_balance(self) -> float:
        """max part size / ideal part size (1.0 = perfectly balanced)."""
        sizes = np.bincount(self.assignment, minlength=self.num_parts)
        ideal = self.num_vertices / self.num_parts
        return float(sizes.max() / ideal) if ideal else 1.0

    def edge_balance(self, graph: Graph) -> float:
        """max in-edge load / ideal load (edges follow destinations)."""
        loads = np.bincount(
            self.assignment[graph.dst], minlength=self.num_parts
        ).astype(np.float64)
        ideal = graph.num_edges / self.num_parts
        return float(loads.max() / ideal) if ideal else 1.0

    def remote_in_neighbors(self, graph: Graph, worker: int) -> np.ndarray:
        """Distinct remote sources feeding worker ``worker``'s vertices."""
        mine = self.assignment[graph.dst] == worker
        sources = graph.src[mine]
        remote = sources[self.assignment[sources] != worker]
        return np.unique(remote)

    def summary(self, graph: Graph) -> Dict[str, float]:
        return {
            "method": self.method,
            "num_parts": self.num_parts,
            "edge_cut_fraction": self.edge_cut_fraction(graph),
            "vertex_balance": self.vertex_balance(),
            "edge_balance": self.edge_balance(graph),
        }


def from_parts(parts: List[np.ndarray], num_vertices: int, method: str) -> Partitioning:
    """Build a :class:`Partitioning` from explicit per-worker vertex lists."""
    assignment = np.full(num_vertices, -1, dtype=np.int64)
    for i, part in enumerate(parts):
        assignment[np.asarray(part, dtype=np.int64)] = i
    if (assignment < 0).any():
        raise ValueError("parts do not cover every vertex")
    return Partitioning(assignment, num_parts=len(parts), method=method)
