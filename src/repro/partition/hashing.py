"""Hash (modulo) partitioning: trivially balanced, locality-destroying.

Used as the worst-case baseline in tests and ablations: it scatters
neighborhoods uniformly, maximising remote dependencies.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import Partitioning


def hash_partition(graph: Graph, num_parts: int) -> Partitioning:
    """Assign vertex ``v`` to worker ``v % num_parts``."""
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    if num_parts > graph.num_vertices:
        raise ValueError("more parts than vertices")
    assignment = np.arange(graph.num_vertices, dtype=np.int64) % num_parts
    return Partitioning(assignment, num_parts=num_parts, method="hash")
