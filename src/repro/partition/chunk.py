"""Chunk-based partitioning (Gemini-style contiguous id ranges).

The paper's default partitioner (Section 3, "Graph Partitioning"):
vertices are split into ``m`` contiguous id ranges.  Ranges can be
balanced by vertex count or, like Gemini, by in-edge count so that
workers get comparable computational load on skewed graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import Partitioning


def chunk_partition(
    graph: Graph, num_parts: int, balance: str = "hybrid"
) -> Partitioning:
    """Split vertex ids into ``m`` contiguous chunks.

    ``balance`` selects the load measure equalised across chunks:

    - ``"vertices"``: equal vertex counts;
    - ``"edges"``: equal in-edge counts;
    - ``"hybrid"`` (default, Gemini's choice): ``alpha * |V| + |E_in|``
      with ``alpha`` = average degree, balancing both.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    if num_parts > graph.num_vertices:
        raise ValueError("more parts than vertices")
    in_deg = graph.in_degrees().astype(np.float64)
    if balance == "vertices":
        load = np.ones(graph.num_vertices)
    elif balance == "edges":
        load = in_deg + 1e-9
    elif balance == "hybrid":
        alpha = max(graph.avg_degree, 1.0)
        load = alpha + in_deg
    else:
        raise ValueError(f"unknown balance mode {balance!r}")
    cumulative = np.cumsum(load)
    total = cumulative[-1]
    # Boundary b_k = first vertex whose cumulative load exceeds k/m.
    targets = total * np.arange(1, num_parts) / num_parts
    boundaries = np.searchsorted(cumulative, targets, side="left").tolist()
    n = graph.num_vertices
    # Force strictly increasing boundaries so every chunk is non-empty,
    # while leaving room for the chunks that follow.
    fixed = []
    previous = 0
    for i, b in enumerate(boundaries):
        remaining_chunks = num_parts - 1 - i
        b = max(b, previous + 1)
        b = min(b, n - remaining_chunks)
        fixed.append(b)
        previous = b
    assignment = np.zeros(n, dtype=np.int64)
    start = 0
    for i, end in enumerate(fixed + [n]):
        assignment[start:end] = i
        start = end
    return Partitioning(assignment, num_parts=num_parts, method="chunk")
