"""Cache configuration and the budget shared with DepCache closures.

The paper's Algorithm 4 spends one per-worker memory budget ``S`` on
replicated dependency subtrees.  The caching subsystem draws from the
*same* ``S`` (via :class:`repro.cluster.memory.MemoryTracker`): every
byte granted to a historical-embedding entry is a byte the greedy can
no longer spend on a closure, and vice versa.  ``CacheBudget`` is the
gatekeeper for the cache's side of that split, with an optional
``capacity_bytes`` / ``capacity_entries`` cap on the cache's share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cluster.memory import MemoryTracker

#: MemoryTracker label under which cache entries are accounted.
CACHE_MEMORY_LABEL = "historical_cache"


@dataclass(frozen=True)
class CacheConfig:
    """Staleness-bounded caching knobs (the third dependency mode).

    Parameters
    ----------
    tau:
        Staleness bound in epochs.  ``0`` refreshes every epoch (bit-
        identical to no cache), ``inf`` fetches once and serves forever;
        the greedy cost model only *chooses* CACHED when ``tau >= 2``
        makes the amortized cost ``t_c / tau`` strictly cheaper.
    policy:
        Admission policy name (``degree`` | ``lru`` | ``expectation``).
    capacity_bytes / capacity_entries:
        Optional cap on the cache's share of the worker budget ``S``
        (``None`` = bounded only by ``S`` itself).
    fanout:
        Expected neighborhood-expansion fanout for the expectation
        policy (``None`` = full-batch exact access counts).
    refresh_on_regression:
        Lets the trainer's staleness-vs-accuracy guard force a refresh
        epoch when the loss regresses.
    """

    tau: float = 4.0
    policy: str = "expectation"
    capacity_bytes: Optional[int] = None
    capacity_entries: Optional[int] = None
    fanout: Optional[int] = None
    refresh_on_regression: bool = True

    def __post_init__(self):
        if self.tau < 0:
            raise ValueError(f"tau must be non-negative, got {self.tau}")
        if self.capacity_bytes is not None and self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if self.capacity_entries is not None and self.capacity_entries < 0:
            raise ValueError("capacity_entries must be non-negative")

    @property
    def amortization(self) -> float:
        """Fetches per epoch per entry in steady state (``1/tau``-ish)."""
        if self.tau <= 1:
            return 1.0
        if math.isinf(self.tau):
            return 0.0
        return 1.0 / float(self.tau)

    def strictly_amortizes(self) -> bool:
        """Whether CACHED can ever beat DepComm on comm volume."""
        return self.tau > 1


class CacheBudget:
    """Admits cache entries against the shared per-worker budget ``S``.

    Parameters
    ----------
    tracker:
        The worker's :class:`MemoryTracker` holding ``S``; DepCache
        closures and cache entries both allocate from it.  ``None``
        means no shared budget (the caps below still apply).
    capacity_bytes / capacity_entries:
        Cache-local caps within ``S``.
    """

    def __init__(
        self,
        tracker: Optional[MemoryTracker] = None,
        capacity_bytes: Optional[int] = None,
        capacity_entries: Optional[int] = None,
    ):
        self.tracker = tracker
        self.capacity_bytes = capacity_bytes
        self.capacity_entries = capacity_entries
        self.entries = 0
        self.bytes = 0

    @classmethod
    def for_config(
        cls, config: CacheConfig, tracker: Optional[MemoryTracker] = None
    ) -> "CacheBudget":
        return cls(
            tracker=tracker,
            capacity_bytes=config.capacity_bytes,
            capacity_entries=config.capacity_entries,
        )

    def snapshot(self) -> tuple:
        """Capture (entries, bytes) for a later :meth:`restore`.

        Tracker-side allocations are *not* captured here; callers that
        roll back admissions must also restore the tracker's own
        snapshot (see :meth:`MemoryTracker.snapshot`).
        """
        return (self.entries, self.bytes)

    def restore(self, state: tuple) -> None:
        """Roll back to a :meth:`snapshot` taken on this budget."""
        self.entries, self.bytes = int(state[0]), int(state[1])

    def would_admit(self, nbytes: int) -> bool:
        if self.capacity_entries is not None and self.entries >= self.capacity_entries:
            return False
        if self.capacity_bytes is not None and self.bytes + nbytes > self.capacity_bytes:
            return False
        if self.tracker is not None and not self.tracker.fits(nbytes):
            return False
        return True

    def admit(self, nbytes: int) -> bool:
        """Reserve one entry of ``nbytes``; False if any bound refuses."""
        if not self.would_admit(nbytes):
            return False
        if self.tracker is not None:
            self.tracker.allocate(nbytes, CACHE_MEMORY_LABEL)
        self.entries += 1
        self.bytes += int(nbytes)
        return True

    def release_all(self) -> None:
        if self.tracker is not None:
            self.tracker.free_all(CACHE_MEMORY_LABEL)
        self.entries = 0
        self.bytes = 0
