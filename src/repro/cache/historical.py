"""Staleness-bounded historical embedding storage.

A :class:`HistoricalEmbeddingCache` keeps, per layer, the last fetched
copy of remote vertices' representations together with the epoch at
which each entry was fetched.  An entry is *fresh* at epoch ``e`` while
``e - stamp < tau``; expired entries are transparent (a lookup reports
them missing), so callers fall back to an exact fetch -- the
"refresh on expiry, exact value on miss" contract.

``tau`` semantics:

- ``tau = 0`` -- nothing is ever fresh: every epoch re-fetches, which
  makes a cache-enabled run bit-identical to a cache-free one;
- ``tau = 1`` -- an entry is fresh only in the epoch it was stored, so
  steady-state traffic equals the uncached engine's (no amortization);
- ``tau >= 2`` -- an entry stored at epoch ``e`` serves epochs
  ``e .. e + tau - 1``, amortizing one fetch over ``tau`` epochs;
- ``tau = inf`` -- fetch once, serve forever (DepCache-like volume).

The cache is bounded either by an entry count or by bytes; past the
bound the configured eviction policy (LRU by default, FIFO otherwise)
drops entries to make room.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class CacheCounters:
    """Lifetime accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0  # lookups that found an entry, but stale
    stores: int = 0
    evictions: int = 0
    resident_bytes: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.expirations
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    row: np.ndarray
    stamp: int
    nbytes: int = field(init=False)

    def __post_init__(self):
        self.nbytes = int(self.row.nbytes)


class HistoricalEmbeddingCache:
    """Per-layer bounded-staleness store of remote representations.

    Parameters
    ----------
    num_layers:
        Layers ``1..num_layers`` each get their own id space (an entry
        for layer ``l`` holds that vertex's ``h^{l-1}`` row).
    tau:
        Staleness bound in epochs (``float('inf')`` allowed).
    capacity_entries / capacity_bytes:
        Optional bounds across all layers; ``None`` means unbounded.
    eviction:
        ``"lru"`` (recency updated on every hit) or ``"fifo"``.
    """

    def __init__(
        self,
        num_layers: int,
        tau: float,
        capacity_entries: Optional[int] = None,
        capacity_bytes: Optional[int] = None,
        eviction: str = "lru",
    ):
        if num_layers < 1:
            raise ValueError("num_layers must be positive")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        if eviction not in ("lru", "fifo"):
            raise ValueError(f"eviction must be 'lru' or 'fifo', got {eviction!r}")
        self.num_layers = num_layers
        self.tau = tau
        self.capacity_entries = capacity_entries
        self.capacity_bytes = capacity_bytes
        self.eviction = eviction
        # Insertion/recency-ordered entries keyed (layer, vertex id).
        self._entries: "OrderedDict[Tuple[int, int], _Entry]" = OrderedDict()
        self.counters = CacheCounters()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        return self.counters.resident_bytes

    def _check_layer(self, layer: int) -> None:
        if not 1 <= layer <= self.num_layers:
            raise ValueError(f"layer must be in 1..{self.num_layers}, got {layer}")

    def _evict_for(self, incoming_bytes: int) -> None:
        """Drop oldest/least-recent entries until the bounds admit one more."""
        while self._entries and (
            (
                self.capacity_entries is not None
                and len(self._entries) >= self.capacity_entries
            )
            or (
                self.capacity_bytes is not None
                and self.counters.resident_bytes + incoming_bytes
                > self.capacity_bytes
            )
        ):
            _, victim = self._entries.popitem(last=False)
            self.counters.resident_bytes -= victim.nbytes
            self.counters.evictions += 1

    # ------------------------------------------------------------------
    def store(self, layer: int, ids: np.ndarray, rows: np.ndarray, epoch: int) -> None:
        """Insert/refresh ``rows`` (one per id) stamped with ``epoch``."""
        self._check_layer(layer)
        ids = np.asarray(ids, dtype=np.int64)
        rows = np.asarray(rows)
        if len(ids) != len(rows):
            raise ValueError(f"{len(ids)} ids but {len(rows)} rows")
        for u, row in zip(ids, rows):
            key = (layer, int(u))
            old = self._entries.pop(key, None)
            if old is not None:
                self.counters.resident_bytes -= old.nbytes
            entry = _Entry(row=np.array(row, copy=True), stamp=int(epoch))
            self._evict_for(entry.nbytes)
            self._entries[key] = entry
            self.counters.resident_bytes += entry.nbytes
            self.counters.stores += 1

    def lookup(
        self, layer: int, ids: np.ndarray, epoch: int
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Fresh entries for ``ids`` at ``epoch``.

        Returns ``(fresh_mask, rows)`` where ``rows`` has one row per
        fresh id (``None`` when nothing is fresh).  Expired or missing
        ids are the caller's responsibility to fetch exactly.
        """
        self._check_layer(layer)
        ids = np.asarray(ids, dtype=np.int64)
        fresh = np.zeros(len(ids), dtype=bool)
        rows = []
        for i, u in enumerate(ids):
            key = (layer, int(u))
            entry = self._entries.get(key)
            if entry is None:
                self.counters.misses += 1
                continue
            if not (epoch - entry.stamp < self.tau):
                self.counters.expirations += 1
                continue
            fresh[i] = True
            rows.append(entry.row)
            self.counters.hits += 1
            if self.eviction == "lru":
                self._entries.move_to_end(key)
        return fresh, (np.stack(rows) if rows else None)

    def stamp_of(self, layer: int, vertex: int) -> Optional[int]:
        entry = self._entries.get((layer, int(vertex)))
        return None if entry is None else entry.stamp

    def peek(self, layer: int, vertex: int) -> Optional[np.ndarray]:
        """The stored row regardless of freshness (``None`` if absent).

        Bypasses the staleness bound and the hit/miss counters: the
        degraded-serving path uses it to answer from an *expired* entry
        when the owner is dead ("stale-if-error").
        """
        entry = self._entries.get((layer, int(vertex)))
        return None if entry is None else entry.row

    def age_of(self, layer: int, vertex: int, epoch: int) -> Optional[float]:
        """Staleness ``epoch - stamp`` of an entry (``None`` if absent).

        Reported regardless of freshness, so callers can log the age of
        entries they are about to serve (the serving ledger's staleness
        column) or of ones they just expired.
        """
        entry = self._entries.get((layer, int(vertex)))
        return None if entry is None else float(epoch - entry.stamp)

    def contains(self, layer: int, vertex: int) -> bool:
        return (layer, int(vertex)) in self._entries

    def invalidate(self) -> None:
        """Drop every entry (e.g. after a crash re-provision)."""
        self._entries.clear()
        self.counters.resident_bytes = 0

    def breakdown(self) -> Dict[int, int]:
        """Entry count per layer."""
        out: Dict[int, int] = {}
        for layer, _ in self._entries:
            out[layer] = out.get(layer, 0) + 1
        return out
