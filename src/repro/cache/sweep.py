"""The tau/capacity sweep harness behind ``repro cache-sweep``.

One sweep trains the same model once per grid point -- every
combination of staleness bound ``tau`` and cache-capacity cap -- plus
one cache-free baseline, and reports each point's per-epoch
communication volume, accuracy, and cache behaviour against that
baseline.  Real numerics (losses and accuracies are exact), modeled
time (epoch seconds come off the simulated cluster's timeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cache.budget import CacheConfig
from repro.cluster.spec import ClusterSpec
from repro.engines import make_engine
from repro.training.trainer import DistributedTrainer, TrainingHistory


@dataclass(frozen=True)
class SweepPoint:
    """One (tau, capacity) grid point's outcome."""

    tau: float
    capacity_bytes: Optional[int]
    avg_comm_bytes: float  # forward bytes actually moved, per epoch
    comm_reduction: float  # 1 - avg_comm_bytes / baseline
    accuracy: float
    accuracy_delta: float  # accuracy - baseline accuracy
    avg_epoch_s: float
    speedup: float  # baseline epoch seconds / this point's
    cache_hits: int
    cache_misses: int
    saved_bytes: int
    refresh_bytes: int
    forced_refreshes: int

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class SweepResult:
    """A full sweep: the cache-free baseline plus every grid point."""

    engine_name: str
    epochs: int
    baseline_comm_bytes: float
    baseline_accuracy: float
    baseline_epoch_s: float
    points: List[SweepPoint] = field(default_factory=list)

    def best(self, accuracy_tolerance: float = 0.01) -> Optional[SweepPoint]:
        """Largest comm reduction whose accuracy stays within tolerance."""
        eligible = [
            p for p in self.points if p.accuracy_delta >= -accuracy_tolerance
        ]
        if not eligible:
            return None
        return max(eligible, key=lambda p: p.comm_reduction)

    def to_dict(self) -> dict:
        """JSON-ready representation (for ``--json`` output)."""
        return {
            "engine": self.engine_name,
            "epochs": self.epochs,
            "baseline": {
                "comm_bytes_per_epoch": self.baseline_comm_bytes,
                "accuracy": self.baseline_accuracy,
                "epoch_s": self.baseline_epoch_s,
            },
            "points": [
                {
                    "tau": p.tau,
                    "capacity_bytes": p.capacity_bytes,
                    "comm_bytes_per_epoch": p.avg_comm_bytes,
                    "comm_reduction": p.comm_reduction,
                    "accuracy": p.accuracy,
                    "accuracy_delta": p.accuracy_delta,
                    "epoch_s": p.avg_epoch_s,
                    "speedup": p.speedup,
                    "hit_rate": p.hit_rate(),
                    "saved_bytes": p.saved_bytes,
                    "refresh_bytes": p.refresh_bytes,
                    "forced_refreshes": p.forced_refreshes,
                }
                for p in self.points
            ],
        }


def _train_once(
    graph,
    model_factory: Callable[[], object],
    cluster: ClusterSpec,
    engine_name: str,
    cache: Optional[CacheConfig],
    epochs: int,
    lr: float,
):
    engine = make_engine(
        engine_name, graph, model_factory(), cluster, cache_config=cache
    )
    trainer = DistributedTrainer(engine, lr=lr)
    history: TrainingHistory = trainer.train(epochs)
    accuracy = engine.evaluate()
    return history, accuracy


def run_cache_sweep(
    graph,
    model_factory: Callable[[], object],
    cluster: ClusterSpec,
    taus: Sequence[float] = (0.0, 2.0, 4.0, 8.0),
    capacities: Sequence[Optional[int]] = (None,),
    epochs: int = 20,
    engine_name: str = "depcomm",
    policy: str = "expectation",
    lr: float = 0.01,
    refresh_on_regression: bool = True,
) -> SweepResult:
    """Train the (tau, capacity) grid and compare against no cache.

    ``model_factory`` must return a *fresh* identically-seeded model on
    every call so each grid point trains from the same initialisation.
    ``capacities`` entries are byte caps (``None`` = unbounded).
    """
    base_history, base_accuracy = _train_once(
        graph, model_factory, cluster, engine_name, None, epochs, lr
    )
    base_comm = (
        sum(r.comm_bytes for r in base_history.reports) / len(base_history.reports)
    )
    base_epoch_s = base_history.avg_epoch_time_s
    result = SweepResult(
        engine_name=engine_name,
        epochs=epochs,
        baseline_comm_bytes=base_comm,
        baseline_accuracy=base_accuracy,
        baseline_epoch_s=base_epoch_s,
    )
    for capacity in capacities:
        for tau in taus:
            cache = CacheConfig(
                tau=tau,
                policy=policy,
                capacity_bytes=capacity,
                refresh_on_regression=refresh_on_regression,
            )
            history, accuracy = _train_once(
                graph, model_factory, cluster, engine_name, cache, epochs, lr
            )
            reports = history.reports
            avg_comm = sum(r.comm_bytes for r in reports) / len(reports)
            avg_epoch = history.avg_epoch_time_s
            result.points.append(
                SweepPoint(
                    tau=tau,
                    capacity_bytes=capacity,
                    avg_comm_bytes=avg_comm,
                    comm_reduction=(
                        1.0 - avg_comm / base_comm if base_comm else 0.0
                    ),
                    accuracy=accuracy,
                    accuracy_delta=accuracy - base_accuracy,
                    avg_epoch_s=avg_epoch,
                    speedup=base_epoch_s / avg_epoch if avg_epoch else 1.0,
                    cache_hits=sum(r.cache_hits for r in reports),
                    cache_misses=sum(r.cache_misses for r in reports),
                    saved_bytes=sum(r.comm_saved_bytes for r in reports),
                    refresh_bytes=sum(r.refresh_bytes for r in reports),
                    forced_refreshes=history.forced_refreshes,
                )
            )
    return result
