"""Staleness-bounded embedding caching: the third dependency mode.

NeutronStar's Algorithm 4 makes a binary per-vertex choice -- replicate
and recompute (DepCache) or fetch every epoch (DepComm).  This package
adds the middle point on that spectrum: keep a *cached, bounded-
staleness* copy of a remote representation and refresh it every ``tau``
epochs, amortizing the communication cost to ``t_c / tau`` at the price
of slightly stale inputs (exact again after every refresh).

- :mod:`repro.cache.historical` -- the per-layer, epoch-stamped store;
- :mod:`repro.cache.policies` -- admission/eviction rankings;
- :mod:`repro.cache.budget` -- the memory budget shared with DepCache
  closures, plus :class:`CacheConfig`;
- :mod:`repro.cache.sweep` -- the tau/capacity sweep harness behind
  ``repro cache-sweep`` and ``benchmarks/bench_cache_sweep.py``.

Engines opt in via ``cache_config=CacheConfig(...)``; with no config
every code path is bit-identical to the cache-free implementation.
"""

from repro.cache.budget import CACHE_MEMORY_LABEL, CacheBudget, CacheConfig
from repro.cache.historical import CacheCounters, HistoricalEmbeddingCache
from repro.cache.policies import (
    AdmissionPolicy,
    ExpectationPolicy,
    LRUPolicy,
    StaticDegreeTopK,
    get_policy,
    make_policy,
)

__all__ = [
    "CACHE_MEMORY_LABEL",
    "AdmissionPolicy",
    "CacheBudget",
    "CacheConfig",
    "CacheCounters",
    "ExpectationPolicy",
    "HistoricalEmbeddingCache",
    "LRUPolicy",
    "StaticDegreeTopK",
    "get_policy",
    "make_policy",
]
