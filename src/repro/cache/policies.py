"""Admission/eviction policies: which remote vertices deserve a cache slot.

A policy ranks a worker's candidate remote dependencies best-first; the
:class:`repro.cache.budget.CacheBudget` then admits a prefix of that
ranking.  Three policies:

- :class:`StaticDegreeTopK` -- global degree as a static popularity
  proxy (hot vertices are consumed by many partitions every epoch);
- :class:`LRUPolicy` -- no static preference (admit in arrival order)
  and recency-based runtime eviction, for workloads whose access set
  drifts;
- :class:`ExpectationPolicy` -- ranks by the *expected* per-epoch access
  frequency derived from the partition's boundary structure, after
  Kaler et al.'s probabilistic neighborhood expansion analysis: under
  fanout-``f`` neighborhood expansion a boundary vertex ``u`` is
  touched with probability ``1 - prod_{v in consumers(u)}
  (1 - min(1, f / deg_in(v)))``, so vertices feeding many local
  consumers through sparse in-neighborhoods rank highest.  With
  full-batch training (``fanout=None``) the expectation degenerates to
  the exact per-epoch access count, i.e. the number of local consumers.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import Partitioning


class AdmissionPolicy:
    """Ranks one worker's cache candidates best-first."""

    name = "base"
    runtime_eviction = "fifo"  # how the runtime cache evicts past capacity

    def __init__(self, graph: Graph, partitioning: Partitioning, worker: int):
        self.graph = graph
        self.partitioning = partitioning
        self.worker = worker

    def scores(self, candidates: np.ndarray, layer: int) -> np.ndarray:
        """Higher = more cache-worthy; same length as ``candidates``."""
        raise NotImplementedError

    def rank(self, candidates: np.ndarray, layer: int) -> np.ndarray:
        """``candidates`` reordered best-first (stable, deterministic)."""
        candidates = np.asarray(candidates, dtype=np.int64)
        if len(candidates) == 0:
            return candidates
        scores = np.asarray(self.scores(candidates, layer), dtype=np.float64)
        # Stable sort on (-score, id) keeps ties deterministic.
        order = np.lexsort((candidates, -scores))
        return candidates[order]


class StaticDegreeTopK(AdmissionPolicy):
    """Rank by global (in + out) degree: structural hotness."""

    name = "degree"

    def scores(self, candidates: np.ndarray, layer: int) -> np.ndarray:
        n = self.graph.num_vertices
        degree = np.bincount(self.graph.src, minlength=n) + np.bincount(
            self.graph.dst, minlength=n
        )
        return degree[candidates].astype(np.float64)


class LRUPolicy(AdmissionPolicy):
    """Admit in arrival order; evict by recency at runtime."""

    name = "lru"
    runtime_eviction = "lru"

    def scores(self, candidates: np.ndarray, layer: int) -> np.ndarray:
        # No static preference: preserve the caller's order.
        return np.arange(len(candidates), 0, -1, dtype=np.float64)

    def rank(self, candidates: np.ndarray, layer: int) -> np.ndarray:
        return np.asarray(candidates, dtype=np.int64)


class ExpectationPolicy(AdmissionPolicy):
    """Expected access frequency from the partition boundary structure."""

    name = "expectation"

    def __init__(
        self,
        graph: Graph,
        partitioning: Partitioning,
        worker: int,
        fanout: Optional[int] = None,
    ):
        super().__init__(graph, partitioning, worker)
        self.fanout = fanout

    def scores(self, candidates: np.ndarray, layer: int) -> np.ndarray:
        graph = self.graph
        n = graph.num_vertices
        owned_mask = self.partitioning.assignment == self.worker
        # Boundary edges candidate -> owned consumer.
        edge_sel = owned_mask[graph.dst]
        src = graph.src[edge_sel]
        dst = graph.dst[edge_sel]
        if self.fanout is None:
            # Full-batch: every boundary edge is exercised every epoch,
            # so the expected access count is the local consumer count.
            consumers = np.bincount(src, minlength=n)
            return consumers[candidates].astype(np.float64)
        in_degree = np.bincount(graph.dst, minlength=n).astype(np.float64)
        # P(consumer v samples u) = min(1, fanout / deg_in(v)); the
        # access probability of u is 1 - prod over its consumers of the
        # complement.  Work in log space, accumulated per source vertex.
        p_edge = np.minimum(1.0, self.fanout / np.maximum(in_degree[dst], 1.0))
        log_miss = np.log1p(-np.minimum(p_edge, 1.0 - 1e-12))
        acc = np.zeros(n)
        np.add.at(acc, src, log_miss)
        p_access = 1.0 - np.exp(acc)
        # Zero-consumer vertices have acc == 0 -> p_access == 0: correct.
        return p_access[candidates]


_POLICIES: Dict[str, Type[AdmissionPolicy]] = {
    StaticDegreeTopK.name: StaticDegreeTopK,
    LRUPolicy.name: LRUPolicy,
    ExpectationPolicy.name: ExpectationPolicy,
}


def get_policy(name: str) -> Type[AdmissionPolicy]:
    """Look up a policy class by name (degree | lru | expectation)."""
    try:
        return _POLICIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown cache policy {name!r}; known: {known}") from None


def make_policy(
    config, graph: Graph, partitioning: Partitioning, worker: int
) -> AdmissionPolicy:
    """Instantiate ``config.policy`` for one worker.

    ``config`` is any object with ``policy`` (and, for the expectation
    policy, ``fanout``) attributes -- in practice a
    :class:`repro.cache.budget.CacheConfig`.
    """
    cls = get_policy(config.policy)
    if cls is ExpectationPolicy:
        return cls(graph, partitioning, worker, fanout=config.fanout)
    return cls(graph, partitioning, worker)
