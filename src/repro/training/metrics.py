"""Classification metrics for evaluation beyond plain accuracy."""

from __future__ import annotations

from typing import Dict

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches; 0.0 on an empty input."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    if len(labels) == 0:
        return 0.0
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``C[i, j]`` = count of true class ``i`` predicted as ``j``."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must align")
    if len(labels) and (
        labels.min() < 0 or labels.max() >= num_classes
        or predictions.min() < 0 or predictions.max() >= num_classes
    ):
        raise ValueError("class id out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """F1 per class; classes absent from both pred and truth score 0."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    tp = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    precision = np.divide(tp, predicted, out=np.zeros_like(tp), where=predicted > 0)
    recall = np.divide(tp, actual, out=np.zeros_like(tp), where=actual > 0)
    denom = precision + recall
    return np.divide(
        2 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0
    )


def macro_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> float:
    """Unweighted mean of per-class F1 scores."""
    return float(per_class_f1(predictions, labels, num_classes).mean())


def micro_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> float:
    """Micro-averaged F1 (equals accuracy for single-label problems)."""
    return accuracy(predictions, labels)


def classification_report(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> Dict[str, float]:
    """Accuracy + macro/micro F1 in one dict (engine.evaluate companion)."""
    return {
        "accuracy": accuracy(predictions, labels),
        "macro_f1": macro_f1(predictions, labels, num_classes),
        "micro_f1": micro_f1(predictions, labels, num_classes),
    }
