"""The distributed trainer: epochs, evaluation, time-to-accuracy.

Wraps an engine with an optimiser and drives training.  All reported
times are *modeled* cluster seconds read off the engine's timeline
(DESIGN.md section 5), while losses and accuracies are real numerics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.engines.base import EpochReport
from repro.tensor import optim


@dataclass(frozen=True)
class ConvergencePoint:
    """One accuracy measurement on the modeled-time axis (Figure 14)."""

    epoch: int
    time_s: float
    accuracy: float
    loss: float


@dataclass
class TrainingHistory:
    """Everything a training run produced."""

    engine_name: str
    reports: List[EpochReport] = field(default_factory=list)
    convergence: List[ConvergencePoint] = field(default_factory=list)
    # Refresh epochs forced by the staleness-vs-accuracy guard.
    forced_refreshes: int = 0

    @property
    def total_time_s(self) -> float:
        return sum(r.epoch_time_s for r in self.reports)

    @property
    def avg_epoch_time_s(self) -> float:
        if not self.reports:
            return 0.0
        return self.total_time_s / len(self.reports)

    @property
    def final_loss(self) -> float:
        return self.reports[-1].loss if self.reports else float("nan")

    def best_accuracy(self) -> float:
        if not self.convergence:
            return 0.0
        return max(p.accuracy for p in self.convergence)

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Modeled seconds until ``target`` accuracy was first reached."""
        for point in self.convergence:
            if point.accuracy >= target:
                return point.time_s
        return None


class DistributedTrainer:
    """Drives an engine for multiple epochs with an optimiser."""

    def __init__(
        self,
        engine,
        optimizer: str = "adam",
        lr: float = 0.01,
        weight_decay: float = 0.0,
    ):
        self.engine = engine
        params = engine.model.parameters()
        if optimizer == "adam":
            self.optimizer = optim.Adam(params, lr=lr, weight_decay=weight_decay)
        elif optimizer == "sgd":
            self.optimizer = optim.SGD(params, lr=lr, weight_decay=weight_decay)
        else:
            raise ValueError(f"unknown optimizer {optimizer!r}")

    def train(
        self,
        epochs: int,
        eval_every: int = 0,
        eval_mask=None,
        target_accuracy: Optional[float] = None,
        patience: Optional[int] = None,
    ) -> TrainingHistory:
        """Run ``epochs`` epochs; optionally evaluate every ``eval_every``.

        Stops early once ``target_accuracy`` is reached, or -- with
        ``patience`` set -- after that many consecutive evaluations
        without an accuracy improvement (both need ``eval_every``).
        """
        if epochs < 1:
            raise ValueError("epochs must be positive")
        if patience is not None and patience < 1:
            raise ValueError("patience must be positive")
        history = TrainingHistory(engine_name=self.engine.name)
        elapsed = 0.0
        best_accuracy = -1.0
        stale_evals = 0
        # Staleness-vs-accuracy guard: with a cache config that allows
        # it, a loss regression on an epoch that served stale embeddings
        # forces the next epoch to refresh (exact values) rather than
        # letting approximation error compound within the tau window.
        guard_active = (
            getattr(self.engine, "cache_config", None) is not None
            and self.engine.cache_config.refresh_on_regression
        )
        prev_loss: Optional[float] = None
        for epoch in range(1, epochs + 1):
            report = self.engine.run_epoch(optimizer=self.optimizer)
            elapsed += report.epoch_time_s
            history.reports.append(report)
            if guard_active:
                if (
                    prev_loss is not None
                    and not report.cache_refreshed
                    and report.loss > prev_loss
                ):
                    self.engine.force_refresh()
                    history.forced_refreshes += 1
                prev_loss = report.loss
            if eval_every and (epoch % eval_every == 0 or epoch == epochs):
                accuracy = self.engine.evaluate(mask=eval_mask)
                history.convergence.append(
                    ConvergencePoint(
                        epoch=epoch,
                        time_s=elapsed,
                        accuracy=accuracy,
                        loss=report.loss,
                    )
                )
                if target_accuracy is not None and accuracy >= target_accuracy:
                    break
                if patience is not None:
                    if accuracy > best_accuracy + 1e-9:
                        best_accuracy = accuracy
                        stale_evals = 0
                    else:
                        stale_evals += 1
                        if stale_evals >= patience:
                            break
        return history
