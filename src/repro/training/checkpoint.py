"""Model checkpointing: save/load parameter state as .npz archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.tensor.nn import Module

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(
    model: Module, path: Union[str, Path], **metadata
) -> Path:
    """Write the model's ``state_dict`` (plus JSON metadata) to ``path``.

    Metadata values must be JSON-serialisable (epoch counters, accuracy,
    dataset names ...).  Returns the resolved path (``.npz`` appended if
    missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    meta = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **state, **{_META_KEY: meta})
    return path


def load_checkpoint(model: Module, path: Union[str, Path]) -> dict:
    """Load parameters from ``path`` into ``model``; returns metadata.

    Raises ``KeyError``/``ValueError`` on parameter-name or shape
    mismatches (delegated to :meth:`Module.load_state_dict`).
    """
    path = Path(path)
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        else:
            metadata = {}
    model.load_state_dict(state)
    return metadata
