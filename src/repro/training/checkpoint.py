"""Model checkpointing: save/load parameter state as .npz archives.

A checkpoint can also carry the **optimizer state** (Adam first/second
moments and step count, SGD velocity): pass ``optimizer=`` to both
:func:`save_checkpoint` and :func:`load_checkpoint` and the resumed run
reproduces the exact parameter trajectory of an uninterrupted one --
the property the rollback-restart recovery path
(:mod:`repro.training.resilient`) depends on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.tensor.nn import Module
from repro.tensor.optim import Optimizer

_META_KEY = "__checkpoint_meta__"
_OPT_META_KEY = "__optimizer_meta__"
_OPT_PREFIX = "__opt__/"
_RESERVED = (_META_KEY, _OPT_META_KEY)


def _encode_json(payload: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8).copy()


def _decode_json(array: np.ndarray) -> dict:
    return json.loads(bytes(array).decode("utf-8"))


def save_checkpoint(
    model: Module,
    path: Union[str, Path],
    optimizer: Optional[Optimizer] = None,
    **metadata,
) -> Path:
    """Write the model's ``state_dict`` (plus JSON metadata) to ``path``.

    Metadata values must be JSON-serialisable (epoch counters, accuracy,
    dataset names ...).  With ``optimizer`` given, its full state (Adam
    moments, step count, SGD velocity) is stored alongside the
    parameters.  Returns the resolved path (``.npz`` appended if
    missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = model.state_dict()
    for key in state:
        if key in _RESERVED or key.startswith(_OPT_PREFIX):
            raise ValueError(f"parameter name {key!r} is reserved")
    payload = dict(state)
    payload[_META_KEY] = _encode_json(metadata)
    if optimizer is not None:
        opt_state = optimizer.state_dict()
        for name, array in opt_state["arrays"].items():
            payload[_OPT_PREFIX + name] = array
        payload[_OPT_META_KEY] = _encode_json(
            {"kind": opt_state["kind"], "scalars": opt_state["scalars"]}
        )
    np.savez(path, **payload)
    return path


def load_checkpoint(
    model: Module,
    path: Union[str, Path],
    optimizer: Optional[Optimizer] = None,
) -> dict:
    """Load parameters from ``path`` into ``model``; returns metadata.

    With ``optimizer`` given, its state is restored too; a checkpoint
    written without optimizer state then raises ``ValueError`` (resuming
    from it would silently diverge from the original trajectory).
    Raises ``KeyError``/``ValueError`` on parameter-name or shape
    mismatches (delegated to :meth:`Module.load_state_dict`).
    """
    path = Path(path)
    with np.load(path) as archive:
        state = {
            k: archive[k]
            for k in archive.files
            if k not in _RESERVED and not k.startswith(_OPT_PREFIX)
        }
        metadata = (
            _decode_json(archive[_META_KEY])
            if _META_KEY in archive.files
            else {}
        )
        opt_meta = (
            _decode_json(archive[_OPT_META_KEY])
            if _OPT_META_KEY in archive.files
            else None
        )
        opt_arrays = {
            k[len(_OPT_PREFIX):]: archive[k]
            for k in archive.files
            if k.startswith(_OPT_PREFIX)
        }
    model.load_state_dict(state)
    if optimizer is not None:
        if opt_meta is None:
            raise ValueError(
                f"checkpoint {path} has no optimizer state; cannot resume "
                "the optimizer from it"
            )
        optimizer.load_state_dict(
            {
                "kind": opt_meta["kind"],
                "arrays": opt_arrays,
                "scalars": opt_meta.get("scalars", {}),
            }
        )
    return metadata
