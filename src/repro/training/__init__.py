"""Training loop, graph preparation, and convergence running."""

from repro.training.prep import prepare_graph
from repro.training.trainer import (
    ConvergencePoint,
    DistributedTrainer,
    EpochReport,
    TrainingHistory,
)

__all__ = [
    "prepare_graph",
    "DistributedTrainer",
    "TrainingHistory",
    "ConvergencePoint",
    "EpochReport",
]
