"""Training loop, graph preparation, and convergence running."""

from repro.training.prep import prepare_graph
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.resilient import ResilientTrainer
from repro.training.trainer import (
    ConvergencePoint,
    DistributedTrainer,
    EpochReport,
    TrainingHistory,
)

__all__ = [
    "prepare_graph",
    "DistributedTrainer",
    "ResilientTrainer",
    "TrainingHistory",
    "ConvergencePoint",
    "EpochReport",
    "save_checkpoint",
    "load_checkpoint",
]
