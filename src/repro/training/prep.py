"""Graph preparation per architecture.

Engines expect the edge weights / self loops the architecture needs, so
that DepCache, DepComm, and Hybrid compute identical results:

- GCN: self loops + symmetric normalisation (Kipf & Welling);
- GIN: self loops with unit weights (the self term is explicit in the
  layer, but the loop keeps each vertex in its own input space);
- GAT: self loops with unit weights (attention ignores edge weights).
"""

from __future__ import annotations

from repro.graph.graph import Graph


def prepare_graph(graph: Graph, arch: str) -> Graph:
    """Return a copy prepared for ``arch`` (gcn | gin | gat | sage)."""
    arch = arch.lower()
    if arch == "gcn":
        return graph.gcn_normalized()
    if arch in ("gin", "gat", "sage"):
        return graph.with_self_loops()
    raise ValueError(f"unknown architecture {arch!r}")
