"""Fault-tolerant training: checkpoints, crash handling, rollback-restart.

:class:`ResilientTrainer` extends the distributed trainer with the
recovery discipline described in :mod:`repro.resilience.recovery`:

1. every ``checkpoint_every`` epochs it snapshots model **and**
   optimizer state (in memory; optionally to ``.npz`` checkpoints);
2. when a layer barrier detects a crashed worker (the engine raises
   :class:`~repro.resilience.faults.WorkerCrashError`), it asks the
   engine to charge the re-provisioning cost to the timeline --
   DepCache pays to rebuild its replicated closures, DepComm only
   re-fetches -- and rolls model + optimizer back to the last
   checkpoint;
3. the epochs since that checkpoint are replayed.  Because optimizer
   state is checkpointed, the replayed trajectory is bit-identical to
   an uninterrupted run; only the modeled clock shows the damage.

Under ``policy.strategy`` ``"shrink"`` (or ``"auto"`` with a permanent
crash / blown provisioning deadline) the trainer instead swaps the
engine for a reshaped (N-1)-worker one via
:func:`repro.resilience.elastic.shrink_engine` -- the model object is
shared, so the bound optimizer survives -- and training resumes from
the checkpoint on the smaller cluster, bit-identically to a healthy run
of that reshaped cluster from the same state.  With
``policy.rejoin_after_epochs`` set, the departed worker grows back in
after that many shrunk epochs (:func:`rejoin_engine`, no rollback).

An optional :class:`repro.resilience.health.ClusterHealthMonitor`
closes the online re-planning loop: it watches per-worker timeline
deltas each epoch and re-runs Algorithm 4 with scaled constants when
the estimates drift.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.resilience.elastic import ShrinkRecord, rejoin_engine, shrink_engine
from repro.resilience.faults import RecoveryExhaustedError, WorkerCrashError
from repro.resilience.health import ClusterHealthMonitor
from repro.resilience.recovery import RecoveryEvent, RecoveryPolicy
from repro.training.checkpoint import save_checkpoint
from repro.training.trainer import (
    ConvergencePoint,
    DistributedTrainer,
    TrainingHistory,
)

_Snapshot = Tuple[int, Dict[str, np.ndarray], dict, Optional[dict]]


class ResilientTrainer(DistributedTrainer):
    """A :class:`DistributedTrainer` that survives worker crashes.

    Parameters
    ----------
    engine:
        Any engine built on :class:`repro.engines.base.BaseEngine`.  A
        fault schedule on its cluster makes crashes possible; without
        one the trainer behaves exactly like its parent (plus periodic
        snapshots).
    policy:
        Checkpoint cadence and recovery parameters.
    checkpoint_dir:
        Optional directory; when given, every snapshot is also written
        as ``epoch_NNNN.npz`` (with optimizer state) via
        :func:`repro.training.checkpoint.save_checkpoint`.
    health_monitor:
        Optional :class:`ClusterHealthMonitor`; when given, the trainer
        observes the timeline each epoch and re-plans the engine when
        the monitor reports drift (online re-planning).  ``None`` (the
        default) keeps the plan frozen -- bit-identical to pre-elastic
        behavior.
    """

    def __init__(
        self,
        engine,
        policy: Optional[RecoveryPolicy] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        health_monitor: Optional[ClusterHealthMonitor] = None,
        **kwargs,
    ):
        super().__init__(engine, **kwargs)
        self.policy = policy or RecoveryPolicy()
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.health_monitor = health_monitor
        self.recoveries: List[RecoveryEvent] = []
        self.replans = 0
        self._crash_count = 0
        self._shrink_stack: List[ShrinkRecord] = []
        self._epochs_since_shrink = 0

    @property
    def total_recovery_s(self) -> float:
        return sum(e.recovery_s for e in self.recoveries)

    @property
    def num_workers(self) -> int:
        """Current cluster size (changes across shrink/rejoin)."""
        return self.engine.cluster.num_workers

    # ------------------------------------------------------------------
    def _snapshot(self, epoch: int) -> _Snapshot:
        model_state = self.engine.model.state_dict()  # already copies
        opt_state = self.optimizer.state_dict()
        # Sampled engines carry draw state (the legacy sequential
        # stream's position); checkpointing it makes the replayed
        # trajectory redraw the same mini-batches.
        sampler_fn = getattr(self.engine, "sampler_state", None)
        sampler_state = sampler_fn() if callable(sampler_fn) else None
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            save_checkpoint(
                self.engine.model,
                self.checkpoint_dir / f"epoch_{epoch:04d}",
                optimizer=self.optimizer,
                epoch=epoch,
                engine=self.engine.name,
            )
        return epoch, model_state, opt_state, sampler_state

    def _restore(self, snapshot: _Snapshot) -> int:
        epoch, model_state, opt_state, sampler_state = snapshot
        self.engine.model.load_state_dict(model_state)
        self.optimizer.load_state_dict(opt_state)
        self.optimizer.zero_grad()
        self.engine.rollback_to_epoch(epoch)
        if sampler_state is not None:
            loader = getattr(self.engine, "load_sampler_state", None)
            if callable(loader):
                loader(sampler_state)
        return epoch

    def _handle_crash(
        self,
        crash: WorkerCrashError,
        epoch: int,
        snapshot: _Snapshot,
        history: TrainingHistory,
    ) -> int:
        """Recover, roll back, and return the epoch to resume from."""
        if self._crash_count >= self.policy.max_recoveries:
            raise RecoveryExhaustedError(
                crash.fault, crash.detected_at_s, self._crash_count
            ) from crash
        self._crash_count += 1
        fault = crash.fault
        shrink = (
            self.policy.should_shrink(fault.permanent)
            and self.engine.cluster.num_workers >= 2
        )
        if shrink:
            new_engine, record, report = shrink_engine(self.engine, crash)
            self._shrink_stack.append(record)
            self._epochs_since_shrink = 0
            self.engine = new_engine
            recovery_s = report.seconds
            refetch = report.migrated_bytes + report.closure_bytes
            strategy = "shrink"
        else:
            recovery_s, refetch = self.engine.recover_from_crash(
                crash, provision_s=self.policy.provision_s
            )
            strategy = "restart"
        ckpt_epoch = self._restore(snapshot)
        # The epochs past the checkpoint will be replayed; drop their
        # records so the history reflects one consistent trajectory.
        del history.reports[ckpt_epoch:]
        history.convergence = [
            p for p in history.convergence if p.epoch <= ckpt_epoch
        ]
        self.recoveries.append(
            RecoveryEvent(
                epoch=epoch,
                worker=fault.worker,
                detected_at_s=crash.detected_at_s,
                recovery_s=recovery_s,
                refetch_bytes=refetch,
                rolled_back_to_epoch=ckpt_epoch,
                strategy=strategy,
                num_workers_after=self.engine.cluster.num_workers,
            )
        )
        return ckpt_epoch + 1

    def _maybe_rejoin(self, epoch: int) -> None:
        """Grow back to the pre-shrink cluster when the policy says so."""
        if not self._shrink_stack or self.policy.rejoin_after_epochs is None:
            return
        self._epochs_since_shrink += 1
        if self._epochs_since_shrink < self.policy.rejoin_after_epochs:
            return
        record = self._shrink_stack.pop()
        self._epochs_since_shrink = 0
        new_engine, report = rejoin_engine(
            self.engine, record, provision_s=self.policy.provision_s
        )
        self.engine = new_engine
        self.recoveries.append(
            RecoveryEvent(
                epoch=epoch,
                worker=record.crash.worker,
                detected_at_s=self.engine.timeline.makespan,
                recovery_s=report.seconds,
                refetch_bytes=report.migrated_bytes,
                rolled_back_to_epoch=epoch,  # no rollback: model is current
                strategy="rejoin",
                num_workers_after=self.engine.cluster.num_workers,
            )
        )

    def _observe_health(self) -> None:
        """Feed the health monitor; re-plan when it reports drift."""
        monitor = self.health_monitor
        if monitor is None:
            return
        timeline = self.engine.timeline
        if monitor.num_workers != timeline.num_workers:
            # Cluster was reshaped since the last observation; restart
            # the estimator at the new size.
            monitor = ClusterHealthMonitor(
                timeline.num_workers,
                alpha=monitor.alpha,
                drift_threshold=monitor.drift_threshold,
                min_observations=monitor.min_observations,
            )
            self.health_monitor = monitor
        monitor.observe(timeline)
        if monitor.maybe_replan(self.engine):
            self.replans += 1

    # ------------------------------------------------------------------
    def train(
        self,
        epochs: int,
        eval_every: int = 0,
        eval_mask=None,
        target_accuracy: Optional[float] = None,
        patience: Optional[int] = None,
    ) -> TrainingHistory:
        """Run ``epochs`` epochs, surviving scheduled worker crashes.

        Semantics match :meth:`DistributedTrainer.train`; additionally
        every crash episode is appended to :attr:`recoveries` and the
        modeled recovery time is visible on the engine's timeline (the
        convergence points' ``time_s`` axis includes it).
        """
        if epochs < 1:
            raise ValueError("epochs must be positive")
        if patience is not None and patience < 1:
            raise ValueError("patience must be positive")
        history = TrainingHistory(engine_name=self.engine.name)
        t_origin = self.engine.timeline.makespan
        snapshot = self._snapshot(0)
        best_accuracy = -1.0
        stale_evals = 0
        epoch = 1
        while epoch <= epochs:
            try:
                report = self.engine.run_epoch(optimizer=self.optimizer)
                accuracy = None
                if eval_every and (epoch % eval_every == 0 or epoch == epochs):
                    accuracy = self.engine.evaluate(mask=eval_mask)
            except WorkerCrashError as crash:
                epoch = self._handle_crash(crash, epoch, snapshot, history)
                continue
            history.reports.append(report)
            self._maybe_rejoin(epoch)
            self._observe_health()
            if accuracy is not None:
                history.convergence.append(
                    ConvergencePoint(
                        epoch=epoch,
                        time_s=self.engine.timeline.makespan - t_origin,
                        accuracy=accuracy,
                        loss=report.loss,
                    )
                )
                if target_accuracy is not None and accuracy >= target_accuracy:
                    break
                if patience is not None:
                    if accuracy > best_accuracy + 1e-9:
                        best_accuracy = accuracy
                        stale_evals = 0
                    else:
                        stale_evals += 1
                        if stale_evals >= patience:
                            break
            if epoch % self.policy.checkpoint_every == 0:
                snapshot = self._snapshot(epoch)
            epoch += 1
        return history
