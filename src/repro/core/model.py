"""The multi-layer GNN model and its factory helpers.

A :class:`GNNModel` is a stack of :class:`~repro.core.layers.GNNLayer`
objects (layer ``l`` maps ``h^{l-1} -> h^l``) whose final layer emits
class logits.  In distributed training every worker drives the *same*
model replica (data parallelism with synchronous all-reduce makes the
replicas bit-identical, so the reproduction shares one instance and
lets gradient accumulation play the role of the all-reduce sum; the
all-reduce's *time* is still charged by the trainer).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.layers import GNNLayer, LAYER_TYPES
from repro.tensor import nn


class GNNModel(nn.Module):
    """A stack of GNN layers ending in class logits."""

    def __init__(self, layers: Sequence[GNNLayer]):
        super().__init__()
        if not layers:
            raise ValueError("a GNN needs at least one layer")
        for a, b in zip(layers, layers[1:]):
            if a.out_dim != b.in_dim:
                raise ValueError(
                    f"layer dims do not chain: {a.out_dim} -> {b.in_dim}"
                )
        self.layers = list(layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def in_dim(self) -> int:
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        return self.layers[-1].out_dim

    def layer(self, l: int) -> GNNLayer:
        """1-based layer access matching the paper's notation."""
        return self.layers[l - 1]

    def dims(self) -> List[int]:
        """``[d^(0), d^(1), ..., d^(L)]`` -- the cost model's d(k)."""
        return [self.layers[0].in_dim] + [layer.out_dim for layer in self.layers]

    def parameter_bytes(self) -> int:
        return sum(p.data.nbytes for p in self.parameters())

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        arch: str,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        seed: int = 0,
    ) -> "GNNModel":
        """Build a 2-layer (or deeper) GCN / GIN / GAT.

        Hidden layers use the architecture's default activation; the
        final layer emits raw logits (activation disabled) for the
        softmax cross-entropy loss.
        """
        arch = arch.lower()
        if arch not in LAYER_TYPES:
            known = ", ".join(sorted(LAYER_TYPES))
            raise ValueError(f"unknown architecture {arch!r}; known: {known}")
        if num_layers < 1:
            raise ValueError("num_layers must be positive")
        rng = np.random.default_rng(seed)
        layer_cls = LAYER_TYPES[arch]
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        layers = []
        for l in range(num_layers):
            activation = "relu" if l < num_layers - 1 else "none"
            layers.append(
                layer_cls(dims[l], dims[l + 1], activation=activation, rng=rng)
            )
        return cls(layers)

    @classmethod
    def gcn(cls, in_dim, hidden_dim, num_classes, num_layers=2, seed=0):
        return cls.build("gcn", in_dim, hidden_dim, num_classes, num_layers, seed)

    @classmethod
    def gin(cls, in_dim, hidden_dim, num_classes, num_layers=2, seed=0):
        return cls.build("gin", in_dim, hidden_dim, num_classes, num_layers, seed)

    @classmethod
    def gat(cls, in_dim, hidden_dim, num_classes, num_layers=2, seed=0):
        return cls.build("gat", in_dim, hidden_dim, num_classes, num_layers, seed)

    @classmethod
    def sage(cls, in_dim, hidden_dim, num_classes, num_layers=2, seed=0):
        return cls.build("sage", in_dim, hidden_dim, num_classes, num_layers, seed)
