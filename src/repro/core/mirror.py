"""Master-mirror bookkeeping (Section 4.2, Figure 7).

Under vertex-cut partitioning a vertex's *master* lives on its owning
worker and *mirrors* exist on every worker that consumes it remotely.
Forward: each mirror pulls the master's representation
(synchronize-compute).  Backward: each mirror pushes its partial
gradient to the master, where contributions are aggregated
(compute-synchronize).  :class:`MirrorExchange` precomputes, for one
layer, who sends what to whom -- the counts feed the byte-volume matrix
of :func:`repro.comm.scheduler.run_exchange` and the id lists drive the
real data routing in the engines.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


class MirrorExchange:
    """Send/recv id lists for one layer's mirror synchronisation.

    Parameters
    ----------
    assignment:
        ``assignment[v]`` = owning worker of vertex ``v``.
    comm_vertices:
        ``comm_vertices[i]`` = global ids worker ``i`` consumes remotely
        at this layer (its mirrors whose masters must be pulled).
    num_workers:
        Cluster size ``m``.
    """

    def __init__(
        self,
        assignment: np.ndarray,
        comm_vertices: Sequence[np.ndarray],
        num_workers: int,
    ):
        self.num_workers = num_workers
        self.assignment = assignment
        # recv_ids[(j, i)] = masters on j whose data mirror-worker i pulls.
        self.recv_ids: Dict[Tuple[int, int], np.ndarray] = {}
        counts = np.zeros((num_workers, num_workers), dtype=np.int64)
        for i, vertices in enumerate(comm_vertices):
            vertices = np.asarray(vertices, dtype=np.int64)
            if len(vertices) == 0:
                continue
            owners = assignment[vertices]
            if (owners == i).any():
                raise ValueError(
                    f"worker {i} lists its own vertices as remote mirrors"
                )
            for j in range(num_workers):
                mine = vertices[owners == j]
                if len(mine):
                    self.recv_ids[(j, i)] = mine
                    counts[j, i] = len(mine)
        self.counts = counts

    def volume_matrix(self, dim: int, bytes_per_value: int = 4) -> np.ndarray:
        """Byte volumes ``[sender, receiver]`` for a ``dim``-wide tensor."""
        return self.counts.astype(np.float64) * dim * bytes_per_value

    def sends_from(self, worker: int) -> List[Tuple[int, np.ndarray]]:
        """(receiver, ids) pairs for one sender (forward direction)."""
        return [
            (i, ids) for (j, i), ids in self.recv_ids.items() if j == worker
        ]

    def recvs_to(self, worker: int) -> List[Tuple[int, np.ndarray]]:
        """(sender, ids) pairs for one receiver."""
        return [
            (j, ids) for (j, i), ids in self.recv_ids.items() if i == worker
        ]

    @property
    def total_vertices(self) -> int:
        return int(self.counts.sum())

    def reversed_counts(self) -> np.ndarray:
        """Backward direction: mirrors push gradients back to masters."""
        return self.counts.T
