"""Layer blocks: the per-worker, per-layer unit of GNN computation.

A :class:`LayerBlock` is what a worker executes at one layer: the set
of vertices whose representations it *computes*, the set whose previous
-layer representations it needs as *inputs*, and the induced edge set
expressed as positions into those two row spaces.  Engines differ only
in how they choose the compute sets (owned vertices for DepComm, k-hop
closures for DepCache, a cost-model mixture for Hybrid) and in where
the input rows come from (local memory vs the network); the block
itself -- and therefore the numerical result -- is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.graph import Graph


@dataclass
class LayerBlock:
    """One layer's computation unit on one worker.

    Attributes
    ----------
    layer_index:
        1-based layer number ``l`` (computes ``h^l`` from ``h^{l-1}``).
    compute_vertices:
        Global ids whose layer-``l`` representation this block produces
        (sorted ascending).
    input_vertices:
        Global ids whose layer-``l-1`` representation the block reads
        (sorted ascending; always a superset of ``compute_vertices`` so
        self terms / attention destinations are available).
    edge_src_pos / edge_dst_pos:
        Per-edge positions: source row in the *input* space, destination
        row in the *output* (compute) space.
    edge_weight:
        Per-edge scalar weights (GCN normalisation).
    compute_pos_in_inputs:
        For each compute vertex, its row in the input space (used for
        self terms and attention destinations).
    """

    layer_index: int
    compute_vertices: np.ndarray
    input_vertices: np.ndarray
    edge_src_pos: np.ndarray
    edge_dst_pos: np.ndarray
    edge_weight: np.ndarray
    compute_pos_in_inputs: np.ndarray
    edge_src_global: np.ndarray
    edge_ids: np.ndarray
    edge_features: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        return len(self.edge_src_pos)

    @property
    def num_inputs(self) -> int:
        return len(self.input_vertices)

    @property
    def num_outputs(self) -> int:
        return len(self.compute_vertices)

    def __repr__(self) -> str:
        return (
            f"LayerBlock(l={self.layer_index}, out={self.num_outputs}, "
            f"in={self.num_inputs}, edges={self.num_edges})"
        )


def build_block(
    graph: Graph,
    compute_vertices: np.ndarray,
    layer_index: int,
    extra_inputs: Optional[np.ndarray] = None,
) -> LayerBlock:
    """Build the block computing ``h^l`` for ``compute_vertices``.

    The edge set is every in-edge of a compute vertex; the input space
    is the union of those edges' sources with the compute set itself
    (plus ``extra_inputs`` if an engine needs extra rows resident).
    """
    compute_vertices = np.unique(np.asarray(compute_vertices, dtype=np.int64))
    if len(compute_vertices) == 0:
        raise ValueError("a block needs at least one compute vertex")
    dsts, srcs, eids = graph.csc.select(compute_vertices)
    pieces = [srcs, compute_vertices]
    if extra_inputs is not None:
        pieces.append(np.asarray(extra_inputs, dtype=np.int64))
    input_vertices = np.unique(np.concatenate(pieces))

    # Position lookups (global id -> row).
    input_pos = _position_lookup(input_vertices)
    output_pos = _position_lookup(compute_vertices)

    return LayerBlock(
        layer_index=layer_index,
        compute_vertices=compute_vertices,
        input_vertices=input_vertices,
        edge_src_pos=input_pos[srcs],
        edge_dst_pos=output_pos[dsts],
        edge_weight=graph.edge_weight[eids],
        compute_pos_in_inputs=input_pos[compute_vertices],
        edge_src_global=srcs,
        edge_ids=eids,
        edge_features=(
            graph.edge_features[eids]
            if graph.edge_features is not None
            else None
        ),
    )


def build_block_from_edges(
    graph: Graph,
    compute_vertices: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    edge_ids: np.ndarray,
    layer_index: int,
) -> LayerBlock:
    """Build a block over an explicit (sampled) edge list.

    Used by the sampling engine: the edge set is a sampled subset of the
    in-edges of ``compute_vertices`` rather than all of them.
    """
    compute_vertices = np.unique(np.asarray(compute_vertices, dtype=np.int64))
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    input_vertices = np.unique(np.concatenate([src, compute_vertices]))
    input_pos = _position_lookup(input_vertices)
    output_pos = _position_lookup(compute_vertices)
    return LayerBlock(
        layer_index=layer_index,
        compute_vertices=compute_vertices,
        input_vertices=input_vertices,
        edge_src_pos=input_pos[src],
        edge_dst_pos=output_pos[dst],
        edge_weight=graph.edge_weight[edge_ids],
        compute_pos_in_inputs=input_pos[compute_vertices],
        edge_src_global=src,
        edge_ids=edge_ids,
        edge_features=(
            graph.edge_features[edge_ids]
            if graph.edge_features is not None
            else None
        ),
    )


def _position_lookup(sorted_ids: np.ndarray) -> "_Lookup":
    return _Lookup(sorted_ids)


class _Lookup:
    """Maps global vertex ids to rows of a sorted id array."""

    def __init__(self, sorted_ids: np.ndarray):
        self.sorted_ids = sorted_ids

    def __getitem__(self, ids: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(self.sorted_ids, ids)
        if len(ids) and (
            pos.max(initial=0) >= len(self.sorted_ids)
            or not np.array_equal(self.sorted_ids[pos], ids)
        ):
            raise KeyError("id not present in block space")
        return pos.astype(np.int64)
