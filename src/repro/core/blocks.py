"""Layer blocks: the per-worker, per-layer unit of GNN computation.

A :class:`LayerBlock` is what a worker executes at one layer: the set
of vertices whose representations it *computes*, the set whose previous
-layer representations it needs as *inputs*, and the induced edge set
expressed as positions into those two row spaces.  Engines differ only
in how they choose the compute sets (owned vertices for DepComm, k-hop
closures for DepCache, a cost-model mixture for Hybrid) and in where
the input rows come from (local memory vs the network); the block
itself -- and therefore the numerical result -- is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.graph import Graph


@dataclass
class LayerBlock:
    """One layer's computation unit on one worker.

    Attributes
    ----------
    layer_index:
        1-based layer number ``l`` (computes ``h^l`` from ``h^{l-1}``).
    compute_vertices:
        Global ids whose layer-``l`` representation this block produces
        (sorted ascending).
    input_vertices:
        Global ids whose layer-``l-1`` representation the block reads
        (sorted ascending; always a superset of ``compute_vertices`` so
        self terms / attention destinations are available).
    edge_src_pos / edge_dst_pos:
        Per-edge positions: source row in the *input* space, destination
        row in the *output* (compute) space.
    edge_weight:
        Per-edge scalar weights (GCN normalisation).
    compute_pos_in_inputs:
        For each compute vertex, its row in the input space (used for
        self terms and attention destinations).
    """

    layer_index: int
    compute_vertices: np.ndarray
    input_vertices: np.ndarray
    edge_src_pos: np.ndarray
    edge_dst_pos: np.ndarray
    edge_weight: np.ndarray
    compute_pos_in_inputs: np.ndarray
    edge_src_global: np.ndarray
    edge_ids: np.ndarray
    edge_features: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        return len(self.edge_src_pos)

    @property
    def num_inputs(self) -> int:
        return len(self.input_vertices)

    @property
    def num_outputs(self) -> int:
        return len(self.compute_vertices)

    def __repr__(self) -> str:
        return (
            f"LayerBlock(l={self.layer_index}, out={self.num_outputs}, "
            f"in={self.num_inputs}, edges={self.num_edges})"
        )


def _mask_union(num_vertices: int, *pieces: np.ndarray) -> np.ndarray:
    """Sorted unique union of id arrays via one boolean mask scan.

    Element-identical to ``np.unique(np.concatenate(pieces))`` for ids
    in ``[0, num_vertices)`` but O(V + total) instead of a hash/sort.
    """
    mask = np.zeros(num_vertices, dtype=bool)
    for piece in pieces:
        mask[piece] = True
    return np.flatnonzero(mask)


def _space(num_vertices: int, *pieces: np.ndarray):
    """A sorted-unique row space: ``(ids, mask, rows)``.

    ``rows`` maps a present global id to its row in ``ids`` via one
    cumulative scan of the membership mask (``rows[id]`` is undefined
    for absent ids — check ``mask`` first).
    """
    mask = np.zeros(num_vertices, dtype=bool)
    if len(pieces) == 1 and _is_sorted_unique(pieces[0]):
        # Already a sorted id space: skip the O(V) flatnonzero scan.
        ids = pieces[0]
        mask[ids] = True
    else:
        for piece in pieces:
            mask[piece] = True
        ids = np.flatnonzero(mask)
    rows = np.empty(num_vertices, dtype=np.int64)
    rows[ids] = np.arange(len(ids), dtype=np.int64)
    return ids, mask, rows


def _is_sorted_unique(ids: np.ndarray) -> bool:
    return bool(
        ids.ndim == 1
        and ids.dtype == np.int64
        and (len(ids) < 2 or (ids[1:] > ids[:-1]).all())
    )


def build_block(
    graph: Graph,
    compute_vertices: np.ndarray,
    layer_index: int,
    extra_inputs: Optional[np.ndarray] = None,
) -> LayerBlock:
    """Build the block computing ``h^l`` for ``compute_vertices``.

    The edge set is every in-edge of a compute vertex; the input space
    is the union of those edges' sources with the compute set itself
    (plus ``extra_inputs`` if an engine needs extra rows resident).

    Results are memoised per graph in a small keyed cache: serving and
    replay rebuild the same (layer, compute set) blocks for every hot
    request batch, and the block is immutable once built, so identical
    keys can share one instance.
    """
    compute_vertices = _mask_union(
        graph.num_vertices, np.asarray(compute_vertices, dtype=np.int64)
    )
    if len(compute_vertices) == 0:
        raise ValueError("a block needs at least one compute vertex")
    extra = (
        None
        if extra_inputs is None
        else np.asarray(extra_inputs, dtype=np.int64)
    )
    cache = graph.__dict__.setdefault("_block_cache", {})
    key = (
        int(layer_index),
        compute_vertices.tobytes(),
        None if extra is None else extra.tobytes(),
    )
    hit = cache.get(key)
    if hit is not None:
        return hit
    dsts, srcs, eids = graph.csc.select(compute_vertices)
    pieces = [srcs, compute_vertices]
    if extra is not None:
        pieces.append(extra)
    input_vertices, _, input_rows = _space(graph.num_vertices, *pieces)
    _, _, output_rows = _space(graph.num_vertices, compute_vertices)

    block = LayerBlock(
        layer_index=layer_index,
        compute_vertices=compute_vertices,
        input_vertices=input_vertices,
        edge_src_pos=input_rows[srcs],
        edge_dst_pos=output_rows[dsts],
        edge_weight=graph.edge_weight[eids],
        compute_pos_in_inputs=input_rows[compute_vertices],
        edge_src_global=srcs,
        edge_ids=eids,
        edge_features=(
            graph.edge_features[eids]
            if graph.edge_features is not None
            else None
        ),
    )
    if len(cache) >= _BLOCK_CACHE_CAP:
        cache.pop(next(iter(cache)))
    cache[key] = block
    return block


_BLOCK_CACHE_CAP = 256


def build_block_from_edges(
    graph: Graph,
    compute_vertices: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    edge_ids: np.ndarray,
    layer_index: int,
) -> LayerBlock:
    """Build a block over an explicit (sampled) edge list.

    Used by the sampling engine: the edge set is a sampled subset of the
    in-edges of ``compute_vertices`` rather than all of them.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    compute_vertices, compute_mask, output_rows = _space(
        graph.num_vertices, np.asarray(compute_vertices, dtype=np.int64)
    )
    input_vertices, _, input_rows = _space(
        graph.num_vertices, src, compute_vertices
    )
    if len(dst) and not compute_mask[dst].all():
        raise KeyError("id not present in block space")
    return LayerBlock(
        layer_index=layer_index,
        compute_vertices=compute_vertices,
        input_vertices=input_vertices,
        edge_src_pos=input_rows[src],
        edge_dst_pos=output_rows[dst],
        edge_weight=graph.edge_weight[edge_ids],
        compute_pos_in_inputs=input_rows[compute_vertices],
        edge_src_global=src,
        edge_ids=edge_ids,
        edge_features=(
            graph.edge_features[edge_ids]
            if graph.edge_features is not None
            else None
        ),
    )


def _position_lookup(sorted_ids: np.ndarray) -> "_Lookup":
    return _Lookup(sorted_ids)


class _Lookup:
    """Maps global vertex ids to rows of a sorted id array.

    Dense inverse table (id -> row, -1 for absent) when the id range is
    comparable to the id count; ``searchsorted`` otherwise.  Both paths
    return the same positions and raise the same ``KeyError``.
    """

    def __init__(self, sorted_ids: np.ndarray):
        self.sorted_ids = sorted_ids
        n = len(sorted_ids)
        span = int(sorted_ids[-1]) + 1 if n else 0
        if n and 0 <= int(sorted_ids[0]) and span <= max(4 * n, 65536):
            self._table = np.full(span, -1, dtype=np.int64)
            self._table[sorted_ids] = np.arange(n, dtype=np.int64)
        else:
            self._table = None

    def __getitem__(self, ids: np.ndarray) -> np.ndarray:
        table = self._table
        if table is not None:
            if len(ids) == 0:
                return np.empty(0, dtype=np.int64)
            ids = np.asarray(ids)
            if int(ids.min()) < 0 or int(ids.max()) >= len(table):
                raise KeyError("id not present in block space")
            pos = table[ids]
            if (pos < 0).any():
                raise KeyError("id not present in block space")
            return pos
        pos = np.searchsorted(self.sorted_ids, ids)
        if len(ids) and (
            pos.max(initial=0) >= len(self.sorted_ids)
            or not np.array_equal(self.sorted_ids[pos], ids)
        ):
            raise KeyError("id not present in block space")
        return pos.astype(np.int64)
