"""The paper's ten dataflow operations (Section 4.1, Figure 6).

Forward flow:  ``GetFromDepNbr -> ScatterToEdge -> EdgeForward ->
GatherByDst -> VertexForward``.  Backward flow (``VertexBackward ->
ScatterBackToEdge -> EdgeBackward -> GatherBySrc -> PostToDepNbr``) is
*auto-generated*: because every forward op below is built from autograd
:class:`~repro.tensor.tensor.Function` primitives, calling
``.backward()`` on a layer's output replays exactly the backward chain
of Figure 6 -- ``ScatterToEdge``'s adjoint is ``GatherBySrc``,
``GatherByDst``'s adjoint is ``ScatterBackToEdge``, and the NN
functions' adjoints come from the tape.  The engines implement the two
dependency-management endpoints (``GetFromDepNbr`` / ``PostToDepNbr``),
which is the paper's point: they are the *only* place distribution is
visible.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.core.blocks import LayerBlock
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def scatter_to_edge(block: LayerBlock, h_inputs: Tensor) -> Tuple[Tensor, Tensor]:
    """Scatter input representations onto edges.

    Returns ``(f_src, f_dst)``: per-edge source and destination
    representations (the adjoint of this gather is ``GatherBySrc``).
    """
    f_src = F.index_select(h_inputs, block.edge_src_pos)
    dst_rows = block.compute_pos_in_inputs[block.edge_dst_pos]
    f_dst = F.index_select(h_inputs, dst_rows)
    return f_src, f_dst


def edge_forward(
    block: LayerBlock,
    f_src: Tensor,
    f_dst: Tensor,
    fn: Callable[[Tensor, Tensor, np.ndarray], Tensor],
) -> Tensor:
    """Apply the edge-associated parameterised function on every edge."""
    return fn(f_src, f_dst, block.edge_weight)


def gather_by_dst(block: LayerBlock, messages: Tensor, agg: str = "sum") -> Tensor:
    """Aggregate edge messages by destination vertex.

    Only commutative/associative aggregators are allowed (the paper
    names min/max/sum); this reproduction ships sum and mean.
    """
    if agg == "sum":
        return F.segment_sum(messages, block.edge_dst_pos, block.num_outputs)
    if agg == "mean":
        return F.segment_mean(messages, block.edge_dst_pos, block.num_outputs)
    raise ValueError(f"unsupported aggregator {agg!r} (use 'sum' or 'mean')")


def fused_scatter_gather(
    block: LayerBlock, h_inputs: Tensor, reducer: str
) -> Tensor:
    """ScatterToEdge + EdgeForward + GatherByDst as one segment kernel.

    The lowered form :class:`~repro.execution.passes.FuseScatterGatherPass`
    dispatches for simple reducers: ``"weighted_sum"`` multiplies each
    source row by the edge weight before the sum (GCN/GIN message),
    ``"mean"`` averages the raw source rows (SAGE).  Bit-identical to
    the three-op chain -- see
    :class:`repro.tensor.functional.FusedGatherScatter`.
    """
    return F.fused_gather_scatter(
        h_inputs,
        block.edge_src_pos,
        block.edge_dst_pos,
        block.num_outputs,
        weights=block.edge_weight if reducer == "weighted_sum" else None,
        reducer=reducer,
    )


def vertex_forward(
    block: LayerBlock,
    h_inputs: Tensor,
    aggregated: Tensor,
    fn: Callable[[Tensor, Tensor], Tensor],
) -> Tensor:
    """Apply the vertex-associated parameterised function.

    ``fn`` receives the destination's previous representation and the
    aggregated neighborhood representation.
    """
    h_dst = F.index_select(h_inputs, block.compute_pos_in_inputs)
    return fn(h_dst, aggregated)
