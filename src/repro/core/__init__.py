"""NeutronStar core: dataflow ops, layer blocks, and GNN layers."""

from repro.core.blocks import LayerBlock, build_block
from repro.core.layers import (
    GATConv,
    GCNConv,
    GINConv,
    GNNLayer,
    MultiHeadGATConv,
    SAGEConv,
    EdgeGatedConv,
)
from repro.core.model import GNNModel
from repro.core import ops

__all__ = [
    "LayerBlock",
    "build_block",
    "GNNLayer",
    "GCNConv",
    "GINConv",
    "GATConv",
    "SAGEConv",
    "MultiHeadGATConv",
    "EdgeGatedConv",
    "GNNModel",
    "ops",
]
