"""GNN layers: GCN, GIN, and GAT on top of the dataflow ops.

Each layer implements the paper's per-layer pattern (Figure 6): an
edge-associated parameterised function and a vertex-associated
parameterised function, glued by ``ScatterToEdge``/``GatherByDst``.
Layers also *account* for their work -- dense FLOPs (NN ops), sparse
FLOPs (graph ops), and resident edge-tensor bytes -- which is what the
cluster simulator charges to the timeline and the memory model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import ops
from repro.core.blocks import LayerBlock
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor import nn
from repro.tensor.tensor import Tensor


class GNNLayer(nn.Module):
    """Base class: a graph propagation layer ``h^{l-1} -> h^l``."""

    def __init__(self, in_dim: int, out_dim: int):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim

    # -- numerical execution ------------------------------------------
    def forward(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        raise NotImplementedError

    # -- cost accounting ----------------------------------------------
    def dense_flops(self, block: LayerBlock) -> float:
        """NN (GEMM-like) FLOPs to execute ``block``."""
        raise NotImplementedError

    def sparse_flops(self, block: LayerBlock) -> float:
        """Graph-op (gather/scatter/edge) FLOPs to execute ``block``."""
        raise NotImplementedError

    def edge_tensor_bytes(self, block: LayerBlock) -> int:
        """Bytes of edge-sized intermediates resident during the layer."""
        raise NotImplementedError

    def backward_flops_multiplier(self) -> float:
        """Backward pass cost relative to forward (standard ~2x)."""
        return 2.0

    # -- fusion (FuseScatterGatherPass) -------------------------------
    def fused_reducer(self) -> Optional[str]:
        """Reducer name when this layer's Scatter/Edge/Gather triple is
        a plain segment reduction (``"weighted_sum"`` / ``"mean"``);
        ``None`` means the pass must leave the layer unfused (edge-
        associated NN computation, e.g. attention)."""
        return None

    def fused_flops_factor(self) -> float:
        """Charged sparse-flops multiplier once fused (skipping the
        materialised per-edge intermediate); 1.0 when not fusable."""
        return 1.0

    def forward_fused(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        """Fused-kernel forward; only valid when :meth:`fused_reducer`
        returns a reducer name."""
        raise NotImplementedError(f"{type(self).__name__} is not fusable")


class GCNConv(GNNLayer):
    """Graph convolution (Kipf & Welling 2017).

    ``h_v = act(W @ sum_u w_uv * h_u)`` over in-neighbors ``u`` (with
    self loops and symmetric normalisation in the edge weights).
    Mirrors the paper's Figure 5 example implementation.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(in_dim, out_dim)
        self.linear = nn.Linear(in_dim, out_dim, rng=rng)
        self.activation = activation

    def forward(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        f_src, _ = ops.scatter_to_edge(block, h_inputs)
        messages = ops.edge_forward(
            block, f_src, None, lambda src, dst, w: src * Tensor(w.reshape(-1, 1))
        )
        aggregated = ops.gather_by_dst(block, messages, agg="sum")
        return ops.vertex_forward(
            block, h_inputs, aggregated, lambda h_dst, agg: self._vertex(agg)
        )

    def _vertex(self, aggregated: Tensor) -> Tensor:
        out = self.linear(aggregated)
        if self.activation == "relu":
            out = out.relu()
        return out

    def fused_reducer(self) -> Optional[str]:
        return "weighted_sum"

    def fused_flops_factor(self) -> float:
        # The E x d weighted message is never materialised: 3 of the 4
        # per-edge/dim ops remain (gather, multiply, scatter-add).
        return 0.75

    def forward_fused(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        aggregated = ops.fused_scatter_gather(block, h_inputs, "weighted_sum")
        return ops.vertex_forward(
            block, h_inputs, aggregated, lambda h_dst, agg: self._vertex(agg)
        )

    def dense_flops(self, block: LayerBlock) -> float:
        return float(self.linear.flops(block.num_outputs))

    def sparse_flops(self, block: LayerBlock) -> float:
        # gather src rows + weight multiply + scatter-add: ~4 ops/edge/dim.
        return 4.0 * block.num_edges * self.in_dim

    def edge_tensor_bytes(self, block: LayerBlock) -> int:
        # The weighted message, E x in_dim float32 (the gathered source
        # rows are views that can be re-gathered in backward, so only
        # one edge-sized tensor needs to stay on the tape).
        return block.num_edges * self.in_dim * 4


class GINConv(GNNLayer):
    """Graph isomorphism layer (Xu et al. 2019).

    ``h_v = MLP((1 + eps) * h_v + sum_u h_u)`` with a 2-layer MLP.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        eps: float = 0.0,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(in_dim, out_dim)
        self.eps = eps
        self.mlp1 = nn.Linear(in_dim, out_dim, rng=rng)
        self.mlp2 = nn.Linear(out_dim, out_dim, rng=rng)
        self.activation = activation

    def forward(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        f_src, _ = ops.scatter_to_edge(block, h_inputs)
        messages = ops.edge_forward(
            block, f_src, None, lambda src, dst, w: src * Tensor(w.reshape(-1, 1))
        )
        aggregated = ops.gather_by_dst(block, messages, agg="sum")
        return ops.vertex_forward(block, h_inputs, aggregated, self._vertex)

    def _vertex(self, h_dst: Tensor, agg: Tensor) -> Tensor:
        combined = h_dst * (1.0 + self.eps) + agg
        out = self.mlp2(self.mlp1(combined).relu())
        if self.activation == "relu":
            out = out.relu()
        return out

    def fused_reducer(self) -> Optional[str]:
        return "weighted_sum"

    def fused_flops_factor(self) -> float:
        return 0.75

    def forward_fused(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        aggregated = ops.fused_scatter_gather(block, h_inputs, "weighted_sum")
        return ops.vertex_forward(block, h_inputs, aggregated, self._vertex)

    def dense_flops(self, block: LayerBlock) -> float:
        n = block.num_outputs
        return float(self.mlp1.flops(n) + self.mlp2.flops(n))

    def sparse_flops(self, block: LayerBlock) -> float:
        return 4.0 * block.num_edges * self.in_dim + 2.0 * block.num_outputs * self.in_dim

    def edge_tensor_bytes(self, block: LayerBlock) -> int:
        return block.num_edges * self.in_dim * 4


class GATConv(GNNLayer):
    """Graph attention layer (Velickovic et al. 2018), single head.

    Projects inputs, scores every edge with a LeakyReLU attention,
    normalises per destination with a segment softmax, and aggregates.
    GAT is the paper's exemplar of *edge-associated NN computation*
    (ROC cannot run it, Table 5).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        negative_slope: float = 0.2,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(in_dim, out_dim)
        rng = rng or np.random.default_rng()
        self.linear = nn.Linear(in_dim, out_dim, bias=False, rng=rng)
        self.attn_src = nn.Parameter(init.xavier_uniform((out_dim, 1), rng=rng))
        self.attn_dst = nn.Parameter(init.xavier_uniform((out_dim, 1), rng=rng))
        self.negative_slope = negative_slope
        self.activation = activation

    def forward(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        projected = self.linear(h_inputs)
        z_src = F.index_select(projected, block.edge_src_pos)
        dst_rows = block.compute_pos_in_inputs[block.edge_dst_pos]
        z_dst = F.index_select(projected, dst_rows)
        scores = F.leaky_relu(
            z_src @ self.attn_src + z_dst @ self.attn_dst, self.negative_slope
        )
        alpha = F.segment_softmax(scores, block.edge_dst_pos, block.num_outputs)
        weighted = z_src * alpha
        out = F.segment_sum(weighted, block.edge_dst_pos, block.num_outputs)
        if self.activation == "relu":
            out = out.relu()
        return out

    def dense_flops(self, block: LayerBlock) -> float:
        # Projection runs on every input row (src and dst share it).
        return float(self.linear.flops(block.num_inputs))

    def sparse_flops(self, block: LayerBlock) -> float:
        e, d = block.num_edges, self.out_dim
        # Two per-edge dot products (2*2*d), softmax (~6), weighting and
        # scatter-add (~4*d), plus the two gathers (~2*d).
        return e * (8.0 * d + 6.0)

    def edge_tensor_bytes(self, block: LayerBlock) -> int:
        # z_src, z_dst, weighted messages, the softmax jacobian
        # workspace and per-edge scalars (scores, alpha, exp, denom):
        # attention keeps far more edge-sized state on the tape than a
        # plain convolution, which is why GAT is the paper's OOM driver.
        return (8 * self.out_dim + 10) * block.num_edges * 4

    def backward_flops_multiplier(self) -> float:
        return 2.2  # softmax backward is slightly heavier


class SAGEConv(GNNLayer):
    """GraphSAGE layer (Hamilton et al. 2017), mean aggregator.

    ``h_v = act(W @ [h_v || mean_u h_u])``: the destination's previous
    representation is concatenated with the mean of its in-neighbors'.
    Not part of the paper's evaluation, but the natural fourth model its
    API supports (the paper's DepCache lineage builds on GraphSAGE
    sampling).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(in_dim, out_dim)
        self.linear = nn.Linear(2 * in_dim, out_dim, rng=rng)
        self.activation = activation

    def forward(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        f_src, _ = ops.scatter_to_edge(block, h_inputs)
        messages = ops.edge_forward(
            block, f_src, None, lambda src, dst, w: src
        )
        aggregated = ops.gather_by_dst(block, messages, agg="mean")
        return ops.vertex_forward(block, h_inputs, aggregated, self._vertex)

    def _vertex(self, h_dst: Tensor, agg: Tensor) -> Tensor:
        out = self.linear(F.concat([h_dst, agg], axis=1))
        if self.activation == "relu":
            out = out.relu()
        return out

    def fused_reducer(self) -> Optional[str]:
        return "mean"

    def fused_flops_factor(self) -> float:
        # Gather and scatter-add collapse around the never-written
        # message copy: 2 of ~3 per-edge/dim ops remain.
        return 0.75

    def forward_fused(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        aggregated = ops.fused_scatter_gather(block, h_inputs, "mean")
        return ops.vertex_forward(block, h_inputs, aggregated, self._vertex)

    def dense_flops(self, block: LayerBlock) -> float:
        return float(self.linear.flops(block.num_outputs))

    def sparse_flops(self, block: LayerBlock) -> float:
        # Gather + scatter-add + the mean division.
        return 3.0 * block.num_edges * self.in_dim + block.num_outputs * self.in_dim

    def edge_tensor_bytes(self, block: LayerBlock) -> int:
        return block.num_edges * self.in_dim * 4


class MultiHeadGATConv(GNNLayer):
    """Multi-head graph attention with concatenated heads.

    ``out_dim`` must divide evenly into ``num_heads`` slices; each head
    runs an independent single-head attention over its slice and the
    results are concatenated (Velickovic et al.'s standard formulation).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int = 4,
        negative_slope: float = 0.2,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(in_dim, out_dim)
        if out_dim % num_heads:
            raise ValueError(
                f"out_dim {out_dim} not divisible by {num_heads} heads"
            )
        rng = rng or np.random.default_rng()
        self.num_heads = num_heads
        head_dim = out_dim // num_heads
        self.heads = [
            GATConv(in_dim, head_dim, negative_slope, activation="none", rng=rng)
            for _ in range(num_heads)
        ]
        self.activation = activation

    def forward(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        outputs = [head.forward(block, h_inputs) for head in self.heads]
        out = F.concat(outputs, axis=1)
        if self.activation == "relu":
            out = out.relu()
        return out

    def dense_flops(self, block: LayerBlock) -> float:
        return sum(head.dense_flops(block) for head in self.heads)

    def sparse_flops(self, block: LayerBlock) -> float:
        return sum(head.sparse_flops(block) for head in self.heads)

    def edge_tensor_bytes(self, block: LayerBlock) -> int:
        return sum(head.edge_tensor_bytes(block) for head in self.heads)

    def backward_flops_multiplier(self) -> float:
        return self.heads[0].backward_flops_multiplier()


class EdgeGatedConv(GNNLayer):
    """Edge-feature-conditioned convolution.

    Exercises Algorithm 1's full edge-associated signature: the
    parameterised edge function takes the *edge properties* ``e_{u,v}``
    (block.edge_features) and gates the source message with
    ``sigmoid(W_e @ e_uv)`` before aggregation.  Blocks without edge
    features fall back to plain weighted messages (gate = edge weight).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        edge_dim: int,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(in_dim, out_dim)
        if edge_dim <= 0:
            raise ValueError("edge_dim must be positive")
        self.edge_dim = edge_dim
        self.edge_gate = nn.Linear(edge_dim, in_dim, rng=rng)
        self.linear = nn.Linear(in_dim, out_dim, rng=rng)
        self.activation = activation

    def forward(self, block: LayerBlock, h_inputs: Tensor) -> Tensor:
        f_src, _ = ops.scatter_to_edge(block, h_inputs)

        def edge_fn(src: Tensor, dst: Tensor, weights: np.ndarray) -> Tensor:
            if block.edge_features is not None:
                if block.edge_features.shape[1] != self.edge_dim:
                    raise ValueError(
                        f"edge features are {block.edge_features.shape[1]}-dim, "
                        f"layer expects {self.edge_dim}"
                    )
                gate = self.edge_gate(Tensor(block.edge_features)).sigmoid()
                return src * gate
            return src * Tensor(weights.reshape(-1, 1))

        messages = ops.edge_forward(block, f_src, None, edge_fn)
        aggregated = ops.gather_by_dst(block, messages, agg="sum")

        def vertex_fn(h_dst: Tensor, agg: Tensor) -> Tensor:
            out = self.linear(agg)
            if self.activation == "relu":
                out = out.relu()
            return out

        return ops.vertex_forward(block, h_inputs, aggregated, vertex_fn)

    def dense_flops(self, block: LayerBlock) -> float:
        # Per-edge gate NN is a dense op over the edge set.
        gate_flops = 2.0 * block.num_edges * self.edge_dim * self.in_dim
        return gate_flops + float(self.linear.flops(block.num_outputs))

    def sparse_flops(self, block: LayerBlock) -> float:
        return 5.0 * block.num_edges * self.in_dim

    def edge_tensor_bytes(self, block: LayerBlock) -> int:
        # Gate + gated message, each E x in_dim.
        return 2 * block.num_edges * self.in_dim * 4


LAYER_TYPES = {
    "gcn": GCNConv,
    "gin": GINConv,
    "gat": GATConv,
    "sage": SAGEConv,
}
