"""The per-layer dataflow program IR compiled from an :class:`EnginePlan`.

The paper's core architectural claim (Section 4) is that graph ops and
NN ops decouple into an explicit dataflow::

    GetFromDepNbr -> ScatterToEdge -> EdgeForward -> GatherByDst
                  -> VertexForward

whose backward is auto-generated (``PostToDepNbr`` mirrors the gather).
:func:`compile_program` makes that flow first-class: every (layer,
worker) pair gets a tuple of typed steps recording *where* each input
row comes from (local read, DepComm fetch over the wire, staleness-
bounded cached read, DepCache recompute) and how much graph/NN work the
layer does, plus one :class:`ExchangePhase` per layer for the mirror
synchronisation.  The IR holds time-invariant quantities only (counts,
flops, byte volumes); the accountant evaluates them against the device
profile *at charge time*, so straggler faults and online re-planning
see current hardware, and optimization passes (:mod:`.passes`) annotate
the IR instead of patching engine code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.execution.plan import EnginePlan


@dataclass(frozen=True)
class GetFromDepNbrStep:
    """Assemble a block's input rows, split by provenance.

    ``num_local`` rows are read from the worker's own layer output (or
    feature matrix), ``num_fetch`` arrive over the wire this layer
    (DepComm, ``C_i^l``), ``num_cached`` are staleness-bounded cached
    reads (``H_i^l``), and ``num_recompute`` were produced locally from
    cached dependency subtrees (DepCache, ``R_i^l`` closure interior).
    """

    kind = "get_from_dep_nbr"
    num_inputs: int
    num_local: int
    num_fetch: int
    num_cached: int
    num_recompute: int
    fetch_bytes: int
    cached_bytes: int


@dataclass(frozen=True)
class ScatterToEdgeStep:
    """Stage source-vertex rows onto the block's edges."""

    kind = "scatter_to_edge"
    num_edges: int


@dataclass(frozen=True)
class EdgeForwardStep:
    """Per-edge message computation (the sparse share of the layer)."""

    kind = "edge_forward"
    num_edges: int
    sparse_flops: float


@dataclass(frozen=True)
class GatherByDstStep:
    """Aggregate edge messages per destination vertex."""

    kind = "gather_by_dst"
    num_edges: int
    num_outputs: int


@dataclass(frozen=True)
class FusedScatterGatherStep:
    """Scatter + EdgeForward + GatherByDst lowered to one segment kernel.

    Written by :class:`.passes.FuseScatterGatherPass` for layers whose
    edge function is a simple (weighted-)sum or mean reducer: the three
    edge-sized steps collapse into a single segment reduction, skipping
    the materialised per-edge intermediate.  ``reducer`` names the
    fused kernel (``"weighted_sum"`` / ``"mean"``).
    """

    kind = "fused_scatter_gather"
    num_edges: int
    num_outputs: int
    sparse_flops: float
    reducer: str


@dataclass(frozen=True)
class VertexForwardStep:
    """Per-vertex NN op (the dense share of the layer)."""

    kind = "vertex_forward"
    num_outputs: int
    dense_flops: float


@dataclass
class ComputeSpec:
    """Static inputs of one worker's layer-compute timing split.

    ``chunk_edges[j]`` / ``chunk_vertices[j]`` describe the work tied to
    the chunk arriving from source worker ``j`` (edges whose sources are
    received, vertices crossing the wire including refresh traffic);
    ``local_edges`` is the communication-independent share.  The
    accountant turns these into seconds with the *current* device
    profile, preserving the pre-IR arithmetic bit for bit.
    """

    sparse_flops: float
    dense_flops: float
    num_edges: int
    d_in: int
    chunk_edges: np.ndarray
    chunk_vertices: np.ndarray
    local_edges: int


@dataclass
class ExchangePhase:
    """One layer's mirror-synchronisation superstep.

    ``volumes[s, r]`` are the forward fetch bytes, ``refresh_volumes``
    the staleness-bounded share (moved only on refresh epochs).
    ``fold_dense[w]`` is pass-written metadata: when set, the accountant
    may fold worker ``w``'s VertexForward time into this exchange's
    communication window (see :class:`.passes.OverlapExchangePass`).
    ``pipeline_depth`` (:class:`.passes.ChunkPipelinePass`) splits each
    incoming chunk into that many sub-chunks, shrinking the pipeline
    fill; ``ring_order`` (:class:`.passes.RingReorderPass`) is the
    staggered round-offset schedule senders follow, which keeps every
    receiver's NIC uncongested.  Defaults (1 / ``None``) charge
    bit-identically to the pre-pass engine.
    """

    layer: int
    volumes: np.ndarray
    refresh_volumes: np.ndarray
    bytes_per_message: float
    refresh_entries: int
    fold_dense: np.ndarray = field(default=None)
    pipeline_depth: int = 1
    ring_order: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.fold_dense is None:
            self.fold_dense = np.zeros(self.volumes.shape[0], dtype=bool)

    def recv_chunks(self, worker: int) -> int:
        """Incoming chunks (distinct senders) for ``worker``."""
        col = self.volumes[:, worker]
        return int(sum(1 for j in range(len(col)) if j != worker and col[j] > 0))

    def total_bytes(self) -> int:
        off = ~np.eye(self.volumes.shape[0], dtype=bool)
        return int(self.volumes[off].sum())


@dataclass
class WorkerLayerProgram:
    """The typed steps one worker runs for one layer."""

    worker: int
    layer: int
    steps: Tuple
    compute: ComputeSpec
    stale_rows: Optional[np.ndarray]  # block-input row positions of H_i^l


@dataclass
class LayerProgram:
    """One layer of the program: an exchange phase + per-worker steps.

    Tensor-parallel layers carry *two* exchange phases: ``exchange``
    slices the input rows across workers before aggregation and
    ``post_exchange`` transposes the slices back to full-width rows at
    their owners afterwards.  ``post_exchange is None`` for every
    mirror-exchange (DepComm/DepCache/CACHED) layer.
    """

    layer: int
    exchange: ExchangePhase
    workers: List[WorkerLayerProgram]
    post_exchange: Optional[ExchangePhase] = None
    # Pass-written: reducer name when the layer's Scatter/Edge/Gather
    # triple was lowered to a FusedScatterGatherStep, else None.
    fused_reducer: Optional[str] = None

    @property
    def is_tp(self) -> bool:
        return self.post_exchange is not None

    @property
    def compute_specs(self) -> List[ComputeSpec]:
        return [wp.compute for wp in self.workers]


@dataclass
class Program:
    """The compiled per-layer dataflow program for one engine plan."""

    num_layers: int
    num_workers: int
    dims: List[int]
    layers: List[LayerProgram]
    # Runtime gather lookup: pos_in_compute[l][w][v] is vertex v's row
    # inside worker w's layer-(l+1) compute set, -1 if absent.
    pos_in_compute: List[List[np.ndarray]]
    passes: List[str] = field(default_factory=list)

    @property
    def stale_rows(self) -> List[List[Optional[np.ndarray]]]:
        return [[wp.stale_rows for wp in lp.workers] for lp in self.layers]


def layer_compute_specs(engine, plan: EnginePlan, l: int) -> List[ComputeSpec]:
    """Extract layer ``l``'s static timing quantities, one per worker."""
    m = engine.cluster.num_workers
    layer = engine.model.layer(l)
    d_in = engine.dims[l - 1]
    specs = []
    for w in range(m):
        block = plan.blocks[l - 1][w]
        dense_flops = float(layer.dense_flops(block))
        chunk_edges = np.zeros(m, dtype=np.int64)
        chunk_vertices = np.zeros(m, dtype=np.int64)
        local_edges = 0
        sparse_flops = 0.0
        if block.num_edges:
            sparse_flops = float(layer.sparse_flops(block))
            comm_set = plan.comm_ids[l - 1][w]
            stale_set = plan.stale_deps[l - 1][w]
            # Stale-cached sources count as received: their rows arrive
            # over the wire on refresh epochs and are staged from the
            # host-resident cache otherwise, paying the same H2D copy.
            if len(comm_set) or len(stale_set):
                received = np.zeros(engine.graph.num_vertices, dtype=bool)
                received[comm_set] = True
                received[stale_set] = True
                from_comm = received[block.edge_src_global]
            else:
                from_comm = np.zeros(block.num_edges, dtype=bool)
            owners = engine.assignment[block.edge_src_global]
            for j in range(m):
                sel = from_comm & (owners == j)
                chunk_edges[j] = int(sel.sum())
                chunk_vertices[j] = len(
                    plan.exchanges[l - 1].recv_ids.get((j, w), ())
                ) + len(plan.refresh_exchanges[l - 1].recv_ids.get((j, w), ()))
            local_edges = int((~from_comm).sum())
        specs.append(ComputeSpec(
            sparse_flops=sparse_flops,
            dense_flops=dense_flops,
            num_edges=block.num_edges,
            d_in=d_in,
            chunk_edges=chunk_edges,
            chunk_vertices=chunk_vertices,
            local_edges=local_edges,
        ))
    return specs


def _gather_step(engine, plan: EnginePlan, l: int, w: int) -> GetFromDepNbrStep:
    block = plan.blocks[l - 1][w]
    remote = int((engine.assignment[block.input_vertices] != w).sum())
    num_fetch = len(plan.comm_ids[l - 1][w])
    num_cached = len(plan.stale_deps[l - 1][w])
    d_in = engine.dims[l - 1]
    return GetFromDepNbrStep(
        num_inputs=block.num_inputs,
        num_local=block.num_inputs - remote,
        num_fetch=num_fetch,
        num_cached=num_cached,
        num_recompute=remote - num_fetch - num_cached,
        fetch_bytes=num_fetch * d_in * 4,
        cached_bytes=num_cached * d_in * 4,
    )


def compile_program(engine, plan: EnginePlan) -> Program:
    """Compile ``plan`` into the explicit per-layer dataflow program.

    Byte volumes go through the engine's ``_forward_volumes`` hook so
    subclasses redefining the communication pattern (ROC's whole-block
    broadcast) compile their own exchanges.  Optimization passes are
    applied separately (:func:`.passes.run_passes`).
    """
    n = engine.graph.num_vertices
    m = engine.cluster.num_workers
    L = engine.num_layers

    pos_in_compute: List[List[np.ndarray]] = [[None] * m for _ in range(L)]
    for l in range(L):
        for w in range(m):
            pos = np.full(n, -1, dtype=np.int64)
            ids = plan.compute_sets[l][w]
            pos[ids] = np.arange(len(ids))
            pos_in_compute[l][w] = pos

    layers: List[LayerProgram] = []
    for l in range(1, L + 1):
        if plan.is_tp_layer(l):
            from repro.execution.tp import build_tp_layer_program

            layers.append(build_tp_layer_program(engine, plan, l))
            continue
        layer = engine.model.layer(l)
        specs = layer_compute_specs(engine, plan, l)
        refresh_ex = plan.refresh_exchanges[l - 1]
        exchange = ExchangePhase(
            layer=l,
            volumes=engine._forward_volumes(plan, l),
            refresh_volumes=refresh_ex.volume_matrix(engine.dims[l - 1]),
            bytes_per_message=engine.dims[l - 1] * 4,
            refresh_entries=refresh_ex.total_vertices,
        )
        workers = []
        for w in range(m):
            block = plan.blocks[l - 1][w]
            stale = plan.stale_deps[l - 1][w]
            stale_rows = None
            if stale is not None and len(stale):
                stale_rows = np.flatnonzero(
                    np.isin(block.input_vertices, stale)
                )
            steps = (
                _gather_step(engine, plan, l, w),
                ScatterToEdgeStep(num_edges=block.num_edges),
                EdgeForwardStep(
                    num_edges=block.num_edges,
                    sparse_flops=specs[w].sparse_flops,
                ),
                GatherByDstStep(
                    num_edges=block.num_edges,
                    num_outputs=block.num_outputs,
                ),
                VertexForwardStep(
                    num_outputs=block.num_outputs,
                    dense_flops=float(layer.dense_flops(block)),
                ),
            )
            workers.append(WorkerLayerProgram(
                worker=w,
                layer=l,
                steps=steps,
                compute=specs[w],
                stale_rows=stale_rows,
            ))
        layers.append(LayerProgram(layer=l, exchange=exchange, workers=workers))

    return Program(
        num_layers=L,
        num_workers=m,
        dims=list(engine.dims),
        layers=layers,
        pos_in_compute=pos_in_compute,
    )
