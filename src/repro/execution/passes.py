"""Optimization passes over the compiled dataflow program.

Passes annotate the :class:`~repro.execution.program.Program` IR --
they never touch engine code or the plan -- and the accountant reads
the annotations at charge time.  That is the point of compiling an
explicit program: a new optimization is a pass plus an accountant
interpretation, not engine surgery.

The first real pass is :class:`OverlapExchangePass` (paper Section
5.4): a multi-chunk exchange leaves the receiver's GPU idle between the
first chunk landing and the last byte arriving, and the layer's
VertexForward (dense) work has no dependence on the incoming rows'
*values* arriving before its own chunk does -- so that window can
absorb dense time.  The pass only marks where folding is legal
(2+ incoming chunks); how many seconds actually fold is the
accountant's call, clamped so wall-clock never increases
(:meth:`~repro.execution.accountant.LayerAccountant._overlap_saving`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.execution.program import Program


class ProgramPass:
    """A program-to-program transform; mutates the IR in place."""

    name = "pass"

    def run(self, program: Program, engine) -> None:
        raise NotImplementedError


class OverlapExchangePass(ProgramPass):
    """Mark exchanges whose comm window may absorb VertexForward time.

    Folding is legal only when a worker receives 2+ chunks: with a
    single incoming chunk there is no post-fill window (the GPU can
    start nothing until the only chunk lands), so single-chunk
    exchanges are left untouched -- the pass is a structural no-op
    there, which the property tests pin.
    """

    name = "overlap-exchange"

    def run(self, program: Program, engine) -> None:
        for lp in program.layers:
            # For a tensor-parallel layer the dense work runs after the
            # *unslice* transpose, so that is the window that can absorb
            # it; the pre-aggregation slice exchange cannot.
            ex = lp.post_exchange if lp.post_exchange is not None else lp.exchange
            for w in range(program.num_workers):
                if ex.recv_chunks(w) >= 2:
                    ex.fold_dense[w] = True


def default_passes(engine) -> List[ProgramPass]:
    """The pass list an engine's configuration enables."""
    if getattr(engine, "overlap_pass", False):
        return [OverlapExchangePass()]
    return []


def run_passes(
    program: Program, engine, passes: Optional[List[ProgramPass]] = None
) -> Program:
    """Apply ``passes`` (default: the engine's) and record their names."""
    if passes is None:
        passes = default_passes(engine)
    for p in passes:
        p.run(program, engine)
        program.passes.append(p.name)
    return program
