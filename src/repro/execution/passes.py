"""Optimization passes over the compiled dataflow program.

Passes annotate the :class:`~repro.execution.program.Program` IR --
they never touch engine code or the plan -- and the accountant reads
the annotations at charge time.  That is the point of compiling an
explicit program: a new optimization is a pass plus an accountant
interpretation, not engine surgery.

The first real pass is :class:`OverlapExchangePass` (paper Section
5.4): a multi-chunk exchange leaves the receiver's GPU idle between the
first chunk landing and the last byte arriving, and the layer's
VertexForward (dense) work has no dependence on the incoming rows'
*values* arriving before its own chunk does -- so that window can
absorb dense time.  The pass only marks where folding is legal
(2+ incoming chunks); how many seconds actually fold is the
accountant's call, clamped so wall-clock never increases
(:meth:`~repro.execution.accountant.LayerAccountant._overlap_saving`).

Three further passes grow the pipeline into a real optimizer:

- :class:`FuseScatterGatherPass` lowers a layer's ScatterToEdge +
  EdgeForward + GatherByDst triple to one
  :class:`~repro.execution.program.FusedScatterGatherStep` when the
  layer declares a fusable reducer (simple weighted-sum or mean).  The
  numeric kernel replays the exact unfused numpy op sequence, so the
  fusion is bit-identical; only the charged sparse time shrinks (the
  materialised per-edge intermediate is skipped).
- :class:`ChunkPipelinePass` annotates exchanges with a cross-layer
  chunk ``pipeline_depth``: each sender splits its chunk into sub-
  chunks so the receiver's overlapped compute starts after ``1/depth``
  of the first chunk, never later than before (depth 1 is identical).
- :class:`RingReorderPass` writes a staggered ring ``ring_order`` onto
  exchanges: senders rotate through receivers round by round, so no
  receiver NIC ever serves two chunks at once -- receive wire time is
  charged uncongested even when the engine-level R optimization is off.

Every pass mutates IR annotations only; with no pass enabled the
program charges and executes bit-identically to the pre-pass engine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.execution.program import FusedScatterGatherStep, Program


class ProgramPass:
    """A program-to-program transform; mutates the IR in place."""

    name = "pass"

    def run(self, program: Program, engine) -> None:
        raise NotImplementedError


class OverlapExchangePass(ProgramPass):
    """Mark exchanges whose comm window may absorb VertexForward time.

    Folding is legal only when a worker receives 2+ chunks: with a
    single incoming chunk there is no post-fill window (the GPU can
    start nothing until the only chunk lands), so single-chunk
    exchanges are left untouched -- the pass is a structural no-op
    there, which the property tests pin.
    """

    name = "overlap-exchange"

    def run(self, program: Program, engine) -> None:
        for lp in program.layers:
            # For a tensor-parallel layer the dense work runs after the
            # *unslice* transpose, so that is the window that can absorb
            # it; the pre-aggregation slice exchange cannot.
            ex = lp.post_exchange if lp.post_exchange is not None else lp.exchange
            for w in range(program.num_workers):
                if ex.recv_chunks(w) >= 2:
                    ex.fold_dense[w] = True


class FuseScatterGatherPass(ProgramPass):
    """Lower simple-reducer layers to one segment-reduction step.

    A layer opts in by returning a reducer name from
    :meth:`~repro.core.layers.GNNLayer.fused_reducer` (GCN/GIN:
    ``"weighted_sum"``; SAGE: ``"mean"``; attention layers return
    ``None`` -- their edge function is not a plain reduction).  The
    worker step tuple ``(Get, Scatter, Edge, Gather, Vertex)`` becomes
    ``(Get, Fused, Vertex)`` and the layer is marked so the executor
    dispatches the fused kernel and the accountant discounts the
    charged sparse time.  Tensor-parallel layers are left untouched.
    """

    name = "fuse-scatter-gather"

    def run(self, program: Program, engine) -> None:
        for lp in program.layers:
            if lp.is_tp:
                continue
            layer = engine.model.layer(lp.layer)
            reducer = layer.fused_reducer()
            if reducer is None:
                continue
            lp.fused_reducer = reducer
            for wp in lp.workers:
                steps = wp.steps
                if len(steps) != 5:
                    continue
                edge = steps[2]
                gather = steps[3]
                wp.steps = (
                    steps[0],
                    FusedScatterGatherStep(
                        num_edges=edge.num_edges,
                        num_outputs=gather.num_outputs,
                        sparse_flops=edge.sparse_flops,
                        reducer=reducer,
                    ),
                    steps[4],
                )


class ChunkPipelinePass(ProgramPass):
    """Annotate exchanges with a cross-layer chunk pipeline depth.

    Each sender splits its chunk into ``depth`` sub-chunks, so a
    receiver overlapping compute with communication (the P
    optimization) can start after the first *sub*-chunk lands: the
    pipeline fill term shrinks to ``fill / depth``.  Wall-clock can
    only shrink -- the phase span is ``max(comm, fill + compute)`` and
    only ``fill`` changes -- and phases without traffic are skipped.
    """

    name = "chunk-pipeline"

    def __init__(self, depth: int = 4):
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self.depth = int(depth)

    def run(self, program: Program, engine) -> None:
        for lp in program.layers:
            for ex in (lp.exchange, lp.post_exchange):
                if ex is not None and ex.total_bytes() > 0:
                    ex.pipeline_depth = max(ex.pipeline_depth, self.depth)


class RingReorderPass(ProgramPass):
    """Reorder each exchange's chunk sends into a staggered ring.

    In round ``r`` worker ``i`` sends to ``(i + r) mod m``: every round
    has distinct receivers, so no receiver NIC serves two concurrent
    chunks and receive wire time is charged uncongested.  The written
    ``ring_order`` is the round-offset schedule ``(1, .., m-1)``.  A
    no-op (beyond the annotation) when the engine-level R optimization
    already staggers sends.
    """

    name = "ring-reorder"

    def run(self, program: Program, engine) -> None:
        order = tuple(range(1, program.num_workers))
        for lp in program.layers:
            for ex in (lp.exchange, lp.post_exchange):
                if ex is not None and ex.total_bytes() > 0:
                    ex.ring_order = order


# Constructors for the optional passes an engine can name in its
# ``program_passes`` tuple (``overlap_pass=True`` remains the switch
# for OverlapExchangePass, kept for compatibility).
PASS_REGISTRY = {
    OverlapExchangePass.name: OverlapExchangePass,
    FuseScatterGatherPass.name: FuseScatterGatherPass,
    ChunkPipelinePass.name: ChunkPipelinePass,
    RingReorderPass.name: RingReorderPass,
}


def make_pass(name: str) -> ProgramPass:
    """Instantiate a registered pass by name."""
    try:
        return PASS_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown program pass {name!r} "
            f"(known: {', '.join(sorted(PASS_REGISTRY))})"
        ) from None


def default_passes(engine) -> List[ProgramPass]:
    """The pass list an engine's configuration enables."""
    passes: List[ProgramPass] = []
    if getattr(engine, "overlap_pass", False):
        passes.append(OverlapExchangePass())
    for name in getattr(engine, "program_passes", ()) or ():
        passes.append(make_pass(name))
    return passes


def run_passes(
    program: Program, engine, passes: Optional[List[ProgramPass]] = None
) -> Program:
    """Apply ``passes`` (default: the engine's) and record their names."""
    if passes is None:
        passes = default_passes(engine)
    for p in passes:
        p.run(program, engine)
        program.passes.append(p.name)
    return program
