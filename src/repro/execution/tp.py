"""Tensor-parallel (NeutronTP) layer programs and their charging.

A tensor-parallel layer splits the *feature dimension* across workers
instead of the graph: worker ``w`` holds slice ``w`` (``widths[w]``
columns of ``d^{l-1}``) of **every** vertex's input row, aggregates the
full edge set on that slice, and a second all-to-all transposes the
aggregated slices back into full-width rows at their owners, where the
dense op runs.  Dependency management disappears entirely -- there is
no DepCache/DepComm/CACHED choice to make, and partition skew cannot
concentrate neighborhood work on hub-heavy workers -- at the price of
two dense slice transposes per layer:

- phase A (``slice``):   ``volumes[s, r] = n_own[s] * widths[r] * 4``
- phase B (``unslice``): ``volumes[s, r] = n_own[r] * widths[s] * 4``

i.e. phase B is exactly phase A transposed.  Both are charged through
:func:`repro.comm.scheduler.run_exchange` like every mirror exchange,
so faults, retry, ring scheduling, and the overlap pass all apply.

Numerically the recombined slices are the full-width rows, so the
executor computes a TP layer *once* on the shared full-graph block and
aliases the result across workers -- bit-identical to a single-worker
reference forward by construction.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.comm.scheduler import ExchangeStats, run_exchange
from repro.execution.plan import EnginePlan
from repro.execution.program import (
    ComputeSpec,
    EdgeForwardStep,
    ExchangePhase,
    GatherByDstStep,
    LayerProgram,
    ScatterToEdgeStep,
    VertexForwardStep,
    WorkerLayerProgram,
)


def slice_widths(dim: int, num_workers: int) -> np.ndarray:
    """Split ``dim`` feature columns as evenly as possible.

    The first ``dim % num_workers`` workers take one extra column;
    widths of zero are legal (more workers than columns) and simply
    mean those workers move and compute nothing for the layer.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    base, rem = divmod(int(dim), num_workers)
    widths = np.full(num_workers, base, dtype=np.int64)
    widths[:rem] += 1
    return widths


class FeatureSliceAllToAllStep:
    """One slice-transpose all-to-all (the TP replacement for
    GetFromDepNbr/mirror exchange).

    ``direction`` is ``"slice"`` (owners scatter their rows' column
    slices to every worker) or ``"unslice"`` (aggregated slices return
    to full-width rows at their owners).  ``slice_dim`` is this
    worker's column count; byte counts exclude the resident diagonal.
    """

    kind = "feature_slice_all_to_all"

    def __init__(
        self,
        direction: str,
        num_vertices: int,
        dim: int,
        slice_dim: int,
        send_bytes: int,
        recv_bytes: int,
    ):
        self.direction = direction
        self.num_vertices = num_vertices
        self.dim = dim
        self.slice_dim = slice_dim
        self.send_bytes = send_bytes
        self.recv_bytes = recv_bytes


def _owned_counts(engine) -> np.ndarray:
    m = engine.cluster.num_workers
    return np.asarray(
        [len(engine.partitioning.part(w)) for w in range(m)], dtype=np.int64
    )


def tp_exchange_volumes(
    engine, l: int
) -> Tuple[np.ndarray, np.ndarray, float]:
    """(slice volumes A, unslice volumes B, per-row message bytes).

    ``A[s, r]`` ships sender ``s``'s owned rows' slice ``r``;
    ``B = A.T`` returns slice ``s`` of receiver ``r``'s owned rows.
    """
    m = engine.cluster.num_workers
    d_in = engine.dims[l - 1]
    counts = _owned_counts(engine)
    widths = slice_widths(d_in, m)
    volumes = np.outer(counts, widths).astype(np.float64) * 4.0
    np.fill_diagonal(volumes, 0.0)
    # Slice transposes move one contiguous buffer per (sender, receiver)
    # pair -- no per-vertex message framing, so a chunk pays a single
    # enqueue (bytes_per_message = 0 in run_exchange's convention).
    # This is NeutronTP's structural advantage over the per-vertex
    # mirror exchange, whose chunks pay one enqueue per vertex row.
    return volumes, volumes.T.copy(), 0.0


def tp_layer_compute_split(engine, plan: EnginePlan, l: int):
    """Per-worker (chunk_compute, local_compute, dense) seconds.

    The sparse aggregation is sliced by columns, so worker ``w``'s
    share of the full edge set costs ``widths[w] / d_in`` of the full
    sparse time; chunks are keyed by the *owner* of each edge's source
    (whose slice rows arrive in phase A).  The dense op runs full-width
    on owned rows only, after the unslice.
    """
    m = engine.cluster.num_workers
    d_in = engine.dims[l - 1]
    layer = engine.model.layer(l)
    block = plan.blocks[l - 1][0]  # full-graph block, shared object
    counts = _owned_counts(engine)
    widths = slice_widths(d_in, m)
    chunk_compute = np.zeros((m, m))
    local_compute = np.zeros(m)
    dense = np.zeros(m)
    num_edges = block.num_edges
    sparse_full = float(layer.sparse_flops(block)) if num_edges else 0.0
    per_out_dense = float(layer.dense_flops(block)) / max(block.num_outputs, 1)
    if num_edges:
        owners = engine.assignment[block.edge_src_global]
        edge_counts = np.bincount(owners, minlength=m)
    else:
        edge_counts = np.zeros(m, dtype=np.int64)
    for w in range(m):
        device = engine._device(w)
        dense[w] = device.dense_time(per_out_dense * counts[w])
        if num_edges == 0:
            continue
        per_edge = sparse_full * (widths[w] / d_in) / num_edges if d_in else 0.0
        for j in range(m):
            if j == w:
                continue
            count = int(edge_counts[j])
            if count == 0:
                continue
            h2d = device.transfer_time(counts[j] * widths[w] * 4 + count * 12)
            chunk_compute[j, w] = device.sparse_time(per_edge * count) + h2d
        local_edges = int(edge_counts[w])
        if local_edges:
            h2d = (
                device.transfer_time(local_edges * 12)
                if engine.chunked_execution
                else 0.0
            )
            local_compute[w] = device.sparse_time(per_edge * local_edges) + h2d
    return chunk_compute, local_compute, dense


def build_tp_layer_program(engine, plan: EnginePlan, l: int) -> LayerProgram:
    """Compile layer ``l`` as a tensor-parallel :class:`LayerProgram`."""
    m = engine.cluster.num_workers
    n = engine.graph.num_vertices
    d_in = engine.dims[l - 1]
    layer = engine.model.layer(l)
    block = plan.blocks[l - 1][0]
    counts = _owned_counts(engine)
    widths = slice_widths(d_in, m)
    volumes_a, volumes_b, msg_bytes = tp_exchange_volumes(engine, l)
    exchange = ExchangePhase(
        layer=l,
        volumes=volumes_a,
        refresh_volumes=np.zeros((m, m)),
        bytes_per_message=msg_bytes,
        refresh_entries=0,
    )
    post_exchange = ExchangePhase(
        layer=l,
        volumes=volumes_b,
        refresh_volumes=np.zeros((m, m)),
        bytes_per_message=msg_bytes,
        refresh_entries=0,
    )
    sparse_full = float(layer.sparse_flops(block)) if block.num_edges else 0.0
    per_out_dense = float(layer.dense_flops(block)) / max(block.num_outputs, 1)
    if block.num_edges:
        owners = engine.assignment[block.edge_src_global]
        edge_counts = np.bincount(owners, minlength=m)
    else:
        edge_counts = np.zeros(m, dtype=np.int64)
    workers: List[WorkerLayerProgram] = []
    for w in range(m):
        frac = widths[w] / d_in if d_in else 0.0
        chunk_edges = edge_counts.copy()
        chunk_vertices = counts.copy()
        chunk_edges[w] = 0
        chunk_vertices[w] = 0
        spec = ComputeSpec(
            sparse_flops=sparse_full * frac,
            dense_flops=per_out_dense * counts[w],
            num_edges=block.num_edges,
            d_in=d_in,
            chunk_edges=chunk_edges,
            chunk_vertices=chunk_vertices,
            local_edges=int(edge_counts[w]),
        )
        steps = (
            FeatureSliceAllToAllStep(
                direction="slice",
                num_vertices=n,
                dim=d_in,
                slice_dim=int(widths[w]),
                send_bytes=int(volumes_a[w].sum()),
                recv_bytes=int(volumes_a[:, w].sum()),
            ),
            ScatterToEdgeStep(num_edges=block.num_edges),
            EdgeForwardStep(
                num_edges=block.num_edges, sparse_flops=sparse_full * frac
            ),
            GatherByDstStep(
                num_edges=block.num_edges, num_outputs=block.num_outputs
            ),
            FeatureSliceAllToAllStep(
                direction="unslice",
                num_vertices=n,
                dim=d_in,
                slice_dim=int(widths[w]),
                send_bytes=int(volumes_b[w].sum()),
                recv_bytes=int(volumes_b[:, w].sum()),
            ),
            VertexForwardStep(
                num_outputs=int(counts[w]),
                dense_flops=per_out_dense * counts[w],
            ),
        )
        workers.append(WorkerLayerProgram(
            worker=w,
            layer=l,
            steps=steps,
            compute=spec,
            stale_rows=None,
        ))
    return LayerProgram(
        layer=l,
        exchange=exchange,
        workers=workers,
        post_exchange=post_exchange,
    )


def tp_charge_forward_layer(
    accountant, plan: EnginePlan, l: int
) -> ExchangeStats:
    """Charge one TP layer's forward: phase A + sliced aggregation,
    phase B, then the owned-rows dense (fold-aware via the shared
    ``_charge_dense``, so :class:`OverlapExchangePass` composes)."""
    engine = accountant.engine
    timeline = engine.timeline
    m = engine.cluster.num_workers
    volumes_a, volumes_b, msg_bytes = tp_exchange_volumes(engine, l)
    chunk_compute, local_compute, dense = tp_layer_compute_split(
        engine, plan, l
    )
    starts = [timeline.now(w) for w in range(m)]
    stats_a = run_exchange(
        timeline,
        engine.cluster.network,
        volumes_a,
        chunk_compute=chunk_compute,
        local_compute=local_compute,
        options=engine.comm,
        barrier=False,
        bytes_per_message=msg_bytes,
        faults=engine.faults,
        retry=engine.retry,
    )
    engine._forward_stats.append(stats_a)
    stats_b = run_exchange(
        timeline,
        engine.cluster.network,
        volumes_b,
        chunk_compute=None,
        local_compute=None,
        options=engine.comm,
        barrier=False,
        bytes_per_message=msg_bytes,
        faults=engine.faults,
        retry=engine.retry,
    )
    engine._forward_stats.append(stats_b)
    accountant._charge_dense(plan, l, dense, stats_b, volumes_b)
    for w in range(m):
        timeline.record_span(
            w, "tp-slice-exchange", starts[w], timeline.now(w), layer=l
        )
    return stats_b


def tp_charge_backward_layer(accountant, plan: EnginePlan, l: int) -> None:
    """Charge one TP layer's backward: the reverse transposes (B then A,
    each the forward phase transposed) with the layer's backward
    compute overlapped, mirroring the mirror-exchange backward."""
    from repro.execution.accountant import BACKWARD_MULTIPLIER

    engine = accountant.engine
    volumes_a, volumes_b, msg_bytes = tp_exchange_volumes(engine, l)
    chunk_compute, local_compute, dense = tp_layer_compute_split(
        engine, plan, l
    )
    compute = (
        chunk_compute.sum(axis=0) + local_compute + dense
    ) * BACKWARD_MULTIPLIER
    for volumes in (volumes_b.T, volumes_a.T):
        run_exchange(
            engine.timeline,
            engine.cluster.network,
            volumes,
            chunk_compute=None,
            local_compute=compute,
            options=engine.comm,
            barrier=False,
            bytes_per_message=msg_bytes,
            faults=engine.faults,
            retry=engine.retry,
        )
        compute = None


def tp_account_layer_memory(
    engine, plan: EnginePlan, l: int, w: int, tape, device
) -> int:
    """Register worker ``w``'s resident bytes for TP layer ``l``.

    Slices shrink everything graph-sized by ``widths[w] / d_in``: the
    input slice and aggregated slice span all ``n`` vertices at slice
    width, while full-width rows exist only for the owned set.  Returns
    the chunk-working-set contribution (0 unless chunked execution).
    """
    m = engine.cluster.num_workers
    block = plan.blocks[l - 1][w]
    layer = engine.model.layer(l)
    d_in = engine.dims[l - 1]
    width = int(slice_widths(d_in, m)[w])
    n_own = len(engine.partitioning.part(w))
    n = block.num_outputs
    # Input slice + aggregated slice (n rows each, slice width), plus
    # full-width owned aggregates and outputs.
    tape.allocate(
        2 * n * width * 4 + n_own * (d_in + engine.dims[l]) * 4,
        f"activations_l{l}",
    )
    frac = width / d_in if d_in else 0.0
    edge_bytes = int(
        layer.edge_tensor_bytes(block) * engine.tape_multiplier * frac
    )
    tape.allocate(edge_bytes, f"edge_tape_l{l}")
    if not engine.chunked_execution:
        return 0
    chunk_edges = engine._max_chunk_edges(plan, l, w)
    chunk_bytes = (
        int(edge_bytes * chunk_edges / block.num_edges)
        if block.num_edges
        else 0
    )
    io_bytes = chunk_edges * 12 + 2 * n * width * 4
    return chunk_bytes + io_bytes


def tp_feature_bytes(engine, plan: EnginePlan, w: int) -> int:
    """Resident feature bytes when layer 1 itself is tensor-parallel:
    owned rows full-width plus everyone else's rows at slice width."""
    m = engine.cluster.num_workers
    d0 = engine.dims[0]
    n = engine.graph.num_vertices
    width = int(slice_widths(d0, m)[w])
    n_own = len(engine.partitioning.part(w))
    return n_own * d0 * 4 + (n - n_own) * width * 4
