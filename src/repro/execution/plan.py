"""Engine plans: the per-worker, per-layer dependency decisions.

An :class:`EnginePlan` is what the dependency-management strategies
produce (Section 3): for every layer and worker, which vertices are
computed locally, which remote dependencies are fetched over the wire
(``C_i^l``), which are served from the staleness-bounded historical
cache (``H_i^l``), and which are recomputed from cached subtrees
(``R_i^l``).  :func:`build_engine_plan` derives the plan top-down from
``engine.decide_dependencies`` -- the *only* method the strategies
implement -- and :mod:`repro.execution.program` then compiles the plan
into the explicit per-layer dataflow program the executor, accountant,
and pass pipeline consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.cache.historical import HistoricalEmbeddingCache
from repro.cache.policies import get_policy
from repro.cluster.memory import MemoryTracker
from repro.comm.scheduler import ExchangeStats  # noqa: F401  (re-export surface)
from repro.core.blocks import LayerBlock, build_block
from repro.core.mirror import MirrorExchange


@dataclass
class EpochReport:
    """What one training epoch produced (modeled time + real loss).

    ``comm_bytes`` is the forward mirror-exchange volume actually moved
    this epoch (refresh traffic included, cache-served traffic not).
    The cache fields stay zero unless staleness-bounded caching is on:
    ``cache_hits`` / ``cache_misses`` count entries served stale versus
    (re-)fetched, ``refresh_bytes`` the re-fetch volume, and
    ``comm_saved_bytes`` what a cache-free run would additionally have
    sent.
    """

    epoch: int
    epoch_time_s: float
    loss: float
    comm_bytes: int
    forward_time_s: float
    backward_time_s: float
    allreduce_time_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    refresh_bytes: int = 0
    comm_saved_bytes: int = 0
    cache_refreshed: bool = False


@dataclass
class EnginePlan:
    """Per-worker, per-layer execution plan (built once, reused)."""

    compute_sets: List[List[np.ndarray]]  # [l-1][worker] -> global ids
    blocks: List[List[LayerBlock]]  # [l-1][worker]
    comm_ids: List[List[np.ndarray]]  # [l-1][worker] -> received ids
    exchanges: List[MirrorExchange]  # [l-1]
    cached_deps: List[List[np.ndarray]]  # [l-1][worker] -> R_i^l
    preprocessing_s: float = 0.0
    device_memory: List[MemoryTracker] = field(default_factory=list)
    host_memory: List[MemoryTracker] = field(default_factory=list)
    # Staleness-bounded CACHED sets H_i^l and their refresh exchange
    # (charged only on refresh epochs); empty without a cache config.
    stale_deps: List[List[np.ndarray]] = field(default_factory=list)
    refresh_exchanges: List[MirrorExchange] = field(default_factory=list)
    # Fourth strategy (NeutronTP): tp_layers[l-1] marks layer ``l`` as
    # tensor-parallel -- full-graph aggregation on feature slices with
    # slice-transpose all-to-alls instead of a mirror exchange.  Empty
    # means no TP anywhere (every pre-existing plan).
    tp_layers: List[bool] = field(default_factory=list)

    def is_tp_layer(self, l: int) -> bool:
        """Whether layer ``l`` (1-based) runs tensor-parallel."""
        return bool(self.tp_layers) and self.tp_layers[l - 1]

    def total_comm_vertices(self) -> int:
        return sum(ex.total_vertices for ex in self.exchanges)

    def total_stale_vertices(self) -> int:
        return sum(ex.total_vertices for ex in self.refresh_exchanges)

    def cache_ratio(self) -> float:
        cached = sum(len(r) for per_l in self.cached_deps for r in per_l)
        comm = sum(len(c) for per_l in self.comm_ids for c in per_l)
        stale = sum(len(h) for per_l in self.stale_deps for h in per_l)
        total = cached + comm + stale
        return cached / total if total else 1.0

    def stale_ratio(self) -> float:
        cached = sum(len(r) for per_l in self.cached_deps for r in per_l)
        comm = sum(len(c) for per_l in self.comm_ids for c in per_l)
        stale = sum(len(h) for per_l in self.stale_deps for h in per_l)
        total = cached + comm + stale
        return stale / total if total else 0.0


def build_engine_plan(engine) -> EnginePlan:
    """Derive the :class:`EnginePlan` from the engine's R/C/H decisions.

    A dependency in C is received, a dependency in H is served from the
    historical cache (received only on refresh epochs), a dependency in
    R (or any remote input outside the decided set, i.e. cached-subtree
    interior) is computed locally.
    """
    m = engine.cluster.num_workers
    L = engine.num_layers
    graph = engine.graph

    cached_all: List[List[np.ndarray]] = [[] for _ in range(L)]
    decisions: List[Dict[int, np.ndarray]] = [dict() for _ in range(L)]
    stale_decisions: List[Dict[int, np.ndarray]] = [dict() for _ in range(L)]
    preprocessing = 0.0
    empty = np.empty(0, dtype=np.int64)
    for w in range(m):
        result = engine.decide_dependencies(w)
        if len(result) == 4:
            cached, communicated, stale, prep_s = result
        else:
            cached, communicated, prep_s = result
            stale = [empty] * L
        preprocessing = max(preprocessing, prep_s)  # workers run in parallel
        for l in range(L):
            cached_all[l].append(cached[l])
            decisions[l][w] = communicated[l]
            stale_decisions[l][w] = stale[l]

    # Engines exposing ``_choose_tp_layers`` (the four-way greedy, the
    # pure-TP engine) may flip whole layers to tensor parallelism.
    chooser = getattr(engine, "_choose_tp_layers", None)
    tp_layers = [bool(f) for f in chooser()] if chooser is not None else []
    if tp_layers and len(tp_layers) != L:
        raise ValueError(
            f"_choose_tp_layers returned {len(tp_layers)} flags "
            f"for {L} layers"
        )
    any_tp = any(tp_layers)

    compute_sets: List[List[np.ndarray]] = [[None] * m for _ in range(L)]
    comm_ids: List[List[np.ndarray]] = [[None] * m for _ in range(L)]
    stale_ids: List[List[np.ndarray]] = [[None] * m for _ in range(L)]
    blocks: List[List[LayerBlock]] = [[None] * m for _ in range(L)]
    all_vertices = np.arange(graph.num_vertices, dtype=np.int64)
    # Full-graph blocks are identical for every worker of a TP layer;
    # build each once and share the object.
    full_blocks: Dict[int, LayerBlock] = {}
    for w in range(m):
        owned = engine.partitioning.part(w)
        need = owned
        for l in range(L, 0, -1):
            if any_tp and tp_layers[l - 1]:
                # Tensor-parallel layer: every worker aggregates the
                # full edge set on its feature slice, then the unslice
                # transpose leaves full-width outputs at their owners
                # only -- so the layer needs no dependency decisions
                # and resets the downward closure to the owned set.
                if l not in full_blocks:
                    full_blocks[l] = build_block(graph, all_vertices, l)
                compute_sets[l - 1][w] = all_vertices
                blocks[l - 1][w] = full_blocks[l]
                comm_ids[l - 1][w] = empty
                stale_ids[l - 1][w] = empty
                need = owned
                continue
            compute_sets[l - 1][w] = need
            block = build_block(graph, need, l)
            blocks[l - 1][w] = block
            remote_inputs = block.input_vertices[
                engine.assignment[block.input_vertices] != w
            ]
            stale = np.intersect1d(remote_inputs, stale_decisions[l - 1][w])
            if any_tp and l >= 2 and tp_layers[l - 2]:
                # The input layer is tensor-parallel: its outputs exist
                # full-width only at their owners, so recompute is
                # impossible and every remote input not served stale is
                # fetched, regardless of the per-vertex decisions.
                comm = np.setdiff1d(remote_inputs, stale)
            else:
                comm = np.intersect1d(remote_inputs, decisions[l - 1][w])
            comm_ids[l - 1][w] = comm
            stale_ids[l - 1][w] = stale
            local_remote = np.setdiff1d(
                np.setdiff1d(remote_inputs, comm), stale
            )
            if l > 1:
                need = np.union1d(owned, local_remote)

    exchanges = [
        MirrorExchange(engine.assignment, comm_ids[l], m) for l in range(L)
    ]
    refresh_exchanges = [
        MirrorExchange(engine.assignment, stale_ids[l], m) for l in range(L)
    ]
    return EnginePlan(
        compute_sets=compute_sets,
        blocks=blocks,
        comm_ids=comm_ids,
        exchanges=exchanges,
        cached_deps=cached_all,
        preprocessing_s=preprocessing,
        stale_deps=stale_ids,
        refresh_exchanges=refresh_exchanges,
        tp_layers=tp_layers,
    )


def build_historical_caches(engine, plan: EnginePlan):
    """One per-worker bounded-staleness store, sized by the plan."""
    if engine.cache_config is None or plan.total_stale_vertices() == 0:
        return None
    eviction = get_policy(engine.cache_config.policy).runtime_eviction
    return [
        HistoricalEmbeddingCache(
            engine.num_layers, engine.cache_config.tau, eviction=eviction
        )
        for _ in range(engine.cluster.num_workers)
    ]
