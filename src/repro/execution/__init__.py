"""The unified execution layer.

Compiles an :class:`~repro.execution.plan.EnginePlan` into an explicit
per-layer dataflow :class:`~repro.execution.program.Program` (the
paper's GetFromDepNbr -> ScatterToEdge -> EdgeForward -> GatherByDst ->
VertexForward decomposition, Section 4) and splits execution into an
**executor** (numeric values), an **accountant** (modeled time), and a
**pass pipeline** (plan-level optimizations such as the Section-5.4
comm/compute overlap).  Training engines, the inference server, and
replay all execute through this layer.
"""

from repro.execution.accountant import (
    BACKWARD_MULTIPLIER,
    HOST_MEMORY_BYTES,
    LayerAccountant,
    account_memory,
    max_chunk_edges,
)
from repro.execution.executor import (
    LayerExecutor,
    StalenessBoundedReader,
    run_closure_forward,
)
from repro.execution.explain import describe_program, render_program
from repro.execution.passes import (
    PASS_REGISTRY,
    ChunkPipelinePass,
    FuseScatterGatherPass,
    OverlapExchangePass,
    ProgramPass,
    RingReorderPass,
    default_passes,
    make_pass,
    run_passes,
)
from repro.execution.plan import (
    EnginePlan,
    EpochReport,
    build_engine_plan,
    build_historical_caches,
)
from repro.execution.program import (
    ComputeSpec,
    EdgeForwardStep,
    ExchangePhase,
    FusedScatterGatherStep,
    GatherByDstStep,
    GetFromDepNbrStep,
    LayerProgram,
    Program,
    ScatterToEdgeStep,
    VertexForwardStep,
    WorkerLayerProgram,
    compile_program,
    layer_compute_specs,
)
from repro.execution.tp import (
    FeatureSliceAllToAllStep,
    build_tp_layer_program,
    slice_widths,
    tp_exchange_volumes,
)

__all__ = [
    "BACKWARD_MULTIPLIER",
    "HOST_MEMORY_BYTES",
    "ChunkPipelinePass",
    "ComputeSpec",
    "EdgeForwardStep",
    "EnginePlan",
    "EpochReport",
    "ExchangePhase",
    "FeatureSliceAllToAllStep",
    "FuseScatterGatherPass",
    "FusedScatterGatherStep",
    "GatherByDstStep",
    "GetFromDepNbrStep",
    "LayerAccountant",
    "LayerExecutor",
    "LayerProgram",
    "OverlapExchangePass",
    "PASS_REGISTRY",
    "Program",
    "ProgramPass",
    "RingReorderPass",
    "ScatterToEdgeStep",
    "StalenessBoundedReader",
    "VertexForwardStep",
    "WorkerLayerProgram",
    "account_memory",
    "build_engine_plan",
    "build_historical_caches",
    "build_tp_layer_program",
    "compile_program",
    "default_passes",
    "describe_program",
    "layer_compute_specs",
    "make_pass",
    "max_chunk_edges",
    "render_program",
    "run_closure_forward",
    "run_passes",
    "slice_widths",
    "tp_exchange_volumes",
]
