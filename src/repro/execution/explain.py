"""Human- and machine-readable rendering of a compiled program.

Backs the ``repro explain-plan`` CLI command: :func:`describe_program`
produces a JSON-friendly dict of the per-layer, per-worker dataflow
(step kinds, vertex counts, bytes, exchange volumes, applied passes),
:func:`render_program` a terminal layout of the same thing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.execution.program import Program


def _step_dict(step) -> Dict[str, object]:
    d = {"kind": step.kind}
    for name, value in vars(step).items():
        d[name] = int(value) if isinstance(value, (int,)) else value
    return d


def _edge_step(wk: Dict[str, object]) -> Dict[str, object]:
    """The sparse step of a worker tuple, fused or not.

    Unfused tuples carry Scatter -> EdgeForward -> GatherByDst at indices
    1..3; the fuse-scatter-gather pass collapses them into one
    ``fused_scatter_gather`` step, so look the step up by kind.
    """
    for step in wk["steps"]:
        if step["kind"] in ("edge_forward", "fused_scatter_gather"):
            return step
    raise ValueError("worker program has no sparse step")


def describe_program(engine) -> Dict[str, object]:
    """The compiled program as a JSON-friendly dict."""
    engine.plan()
    program: Program = engine.program_
    layers = []
    for lp in program.layers:
        ex = lp.exchange
        # Tensor-parallel layers place the dense work after the unslice
        # transpose, so fold/chunk metadata lives on ``post_exchange``.
        fold_ex = lp.post_exchange if lp.post_exchange is not None else ex
        workers = []
        for wp in lp.workers:
            workers.append({
                "worker": wp.worker,
                "steps": [_step_dict(s) for s in wp.steps],
                "recv_chunks": fold_ex.recv_chunks(wp.worker),
                "fold_dense": bool(fold_ex.fold_dense[wp.worker]),
                "num_stale_rows": (
                    0 if wp.stale_rows is None else int(len(wp.stale_rows))
                ),
            })
        layers.append({
            "layer": lp.layer,
            "tensor_parallel": lp.is_tp,
            "exchange_bytes": ex.total_bytes(),
            "post_exchange_bytes": (
                lp.post_exchange.total_bytes() if lp.is_tp else 0
            ),
            "refresh_entries": int(ex.refresh_entries),
            "bytes_per_message": float(ex.bytes_per_message),
            "fused_reducer": lp.fused_reducer,
            "pipeline_depth": int(fold_ex.pipeline_depth),
            "ring_order": (
                list(fold_ex.ring_order)
                if fold_ex.ring_order is not None
                else None
            ),
            "workers": workers,
        })
    return {
        "engine": engine.name,
        "num_workers": program.num_workers,
        "num_layers": program.num_layers,
        "dims": list(program.dims),
        "passes": list(program.passes),
        "layers": layers,
    }


def render_program(engine) -> str:
    """Terminal rendering of :func:`describe_program`."""
    desc = describe_program(engine)
    lines: List[str] = []
    lines.append(
        f"program: engine={desc['engine']} workers={desc['num_workers']} "
        f"layers={desc['num_layers']} dims={desc['dims']}"
    )
    lines.append(
        "passes: " + (", ".join(desc["passes"]) if desc["passes"] else "(none)")
    )
    for layer in desc["layers"]:
        notes = []
        if layer["pipeline_depth"] > 1:
            notes.append(f"pipeline-depth={layer['pipeline_depth']}")
        if layer["ring_order"] is not None:
            order = "-".join(str(o) for o in layer["ring_order"])
            notes.append(f"ring-order={order}")
        annot = f"  [{', '.join(notes)}]" if notes else ""
        if layer.get("tensor_parallel"):
            lines.append(
                f"layer {layer['layer']}: tensor-parallel, "
                f"slice exchange {layer['exchange_bytes']} B, "
                f"unslice exchange {layer['post_exchange_bytes']} B"
                + annot
            )
            for wk in layer["workers"]:
                sl = wk["steps"][0]
                edge = _edge_step(wk)
                vertex = wk["steps"][-1]
                flags = ["fold-dense"] if wk["fold_dense"] else []
                suffix = f"  [{', '.join(flags)}]" if flags else ""
                lines.append(
                    f"  worker {wk['worker']}: "
                    f"SliceAllToAll(n={sl['num_vertices']} "
                    f"slice={sl['slice_dim']}/{sl['dim']}) -> "
                    f"Scatter/Edge/Gather(edges={edge['num_edges']}) -> "
                    f"UnsliceAllToAll -> "
                    f"VertexForward(out={vertex['num_outputs']})"
                    f" chunks={wk['recv_chunks']}{suffix}"
                )
            continue
        lines.append(
            f"layer {layer['layer']}: exchange {layer['exchange_bytes']} B"
            + (
                f", refresh entries {layer['refresh_entries']}"
                if layer["refresh_entries"]
                else ""
            )
            + annot
        )
        for wk in layer["workers"]:
            gather = wk["steps"][0]
            vertex = wk["steps"][-1]
            edge = _edge_step(wk)
            if edge["kind"] == "fused_scatter_gather":
                sparse = (
                    f"FusedScatterGather(edges={edge['num_edges']} "
                    f"reducer={edge['reducer']})"
                )
            else:
                sparse = f"Scatter/Edge/Gather(edges={edge['num_edges']})"
            flags = []
            if wk["fold_dense"]:
                flags.append("fold-dense")
            if wk["num_stale_rows"]:
                flags.append(f"stale-rows={wk['num_stale_rows']}")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"  worker {wk['worker']}: "
                f"GetFromDepNbr(in={gather['num_inputs']} "
                f"local={gather['num_local']} fetch={gather['num_fetch']} "
                f"cached={gather['num_cached']} "
                f"recompute={gather['num_recompute']} "
                f"fetch_bytes={gather['fetch_bytes']}) -> "
                f"{sparse} -> "
                f"VertexForward(out={vertex['num_outputs']})"
                f" chunks={wk['recv_chunks']}{suffix}"
            )
    return "\n".join(lines)
