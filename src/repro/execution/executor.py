"""The executor: numerical execution of the compiled dataflow program.

Everything that touches tensor *values* lives here: the layer-by-layer
forward (``GetFromDepNbr`` + the NN ops), the loss, the auto-generated
backward with ``PostToDepNbr`` gradient routing, evaluation, and the
staleness-bounded cached-read path.  The accountant
(:mod:`.accountant`) owns the mirror-image concern -- turning the same
program into modeled seconds -- so an engine epoch is the executor and
accountant walking the program together.

As with the accountant, value-affecting calls dispatch through the
engine's historical hook methods (``_gather_inputs``,
``_apply_historical_cache``, ``_route_input_grads``, ...), now one-line
shims onto this class, so subclass overrides keep working.

:class:`StalenessBoundedReader` is the one code path for
bounded-staleness reads: training gathers override rows through it and
the inference server probes per-vertex entries through it, so the
freshness rule (serve within ``tau``, exact value on miss) cannot fork
between the two.  :func:`run_closure_forward` is the shared
union-closure forward the serving layer executes batches with.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.blocks import LayerBlock, build_block
from repro.execution.plan import EnginePlan, EpochReport
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad


class StalenessBoundedReader:
    """Bounded-staleness reads over one :class:`HistoricalEmbeddingCache`.

    Wraps the raw cache with the freshness *policy*: a cached entry
    within the staleness bound overrides the exact value; an expired or
    missing entry keeps it ("exact value on miss").  Both the training
    gather and the serving request path read through this class.
    """

    def __init__(self, cache):
        self.cache = cache

    def refresh(
        self, layer: int, ids: np.ndarray, rows: np.ndarray, key
    ) -> None:
        """Store exact rows, stamped ``key`` (epoch or microsecond)."""
        self.cache.store(layer, ids, rows, key)

    def override_with_cached(
        self,
        layer: int,
        ids: np.ndarray,
        key,
        rows: np.ndarray,
        row_positions: np.ndarray,
    ) -> None:
        """Overwrite ``rows[row_positions[fresh]]`` with cached values.

        ``rows`` arrives holding exact values; entries of ``ids`` still
        within the staleness bound at ``key`` replace them in place --
        the bounded-staleness approximation.
        """
        fresh, cached_rows = self.cache.lookup(layer, ids, key)
        if cached_rows is not None:
            rows[row_positions[fresh]] = cached_rows

    def probe(
        self, layer: int, vertex: int, key, allow_expired: bool = False
    ) -> Tuple[Optional[np.ndarray], Optional[float], bool]:
        """One-vertex read: ``(row | None, stamp, served_expired)``.

        A fresh entry is served with its stamp (the caller derives the
        staleness it is accepting).  With ``allow_expired`` -- the
        serve-stale-if-error degraded mode -- an expired entry is still
        returned, flagged, when one exists.  Counter effects match the
        training path: the lookup records the hit or miss; the expired
        fallback reads via ``peek`` and stays invisible to counters.
        """
        stamp = self.cache.stamp_of(layer, vertex)
        fresh, rows = self.cache.lookup(
            layer, np.array([vertex], dtype=np.int64), key
        )
        if rows is not None and fresh[0]:
            return rows[0], stamp, False
        if allow_expired and stamp is not None:
            row = self.cache.peek(layer, vertex)
            if row is not None:
                return row, stamp, True
        return None, stamp, False


def run_closure_forward(model, graph, vertex_layers) -> np.ndarray:
    """Forward a union-closure through the model (no autograd, float64).

    ``vertex_layers[k]`` is the sorted vertex set whose layer-``(L-k)``
    values are needed; ``vertex_layers[L]`` the layer-0 (feature) set.
    This is the serving/replay execution path: the same top-down closure
    the training program compiles, shrunk to one batch's footprint.
    Returns the final-layer rows aligned with ``vertex_layers[0]``.
    """
    L = model.num_layers
    prev_ids = vertex_layers[L]
    prev = graph.features[prev_ids].astype(np.float64)
    for l in range(1, L + 1):
        compute_ids = vertex_layers[L - l]
        block = build_block(graph, compute_ids, l)
        pos = np.searchsorted(prev_ids, block.input_vertices)
        with no_grad():
            out = model.layer(l).forward(block, Tensor(prev[pos]))
        prev = out.data
        prev_ids = compute_ids
    return prev


class LayerExecutor:
    """Runs one engine's numeric forward/loss/backward over its program."""

    def __init__(self, engine):
        self.engine = engine
        self._readers: Optional[List[StalenessBoundedReader]] = None
        self._readers_for: Optional[object] = None

    def _reader(self, worker: int) -> StalenessBoundedReader:
        caches = self.engine._hist_caches
        if self._readers is None or self._readers_for is not caches:
            self._readers = [StalenessBoundedReader(c) for c in caches]
            self._readers_for = caches
        return self._readers[worker]

    # -- epoch ---------------------------------------------------------
    def run_epoch(self, optimizer=None) -> EpochReport:
        """One full-batch training epoch (forward, loss, backward, update)."""
        engine = self.engine
        plan = engine.plan()
        refreshed = engine._begin_epoch_cache()
        engine._forward_stats = []
        t_start = engine._sync()

        engine._in_training_forward = True
        try:
            h_values, in_tensors, out_tensors = engine._forward(
                plan, training=True
            )
        finally:
            engine._in_training_forward = False
        loss_value, loss_tensors = engine._compute_loss(plan, out_tensors)
        t_forward = engine._sync()

        engine._backward(plan, in_tensors, out_tensors, loss_tensors)
        t_backward = engine._sync()

        engine._charge_allreduce()
        if optimizer is not None:
            optimizer.step()
            optimizer.zero_grad()
        t_end = engine._sync()

        engine._epoch += 1
        stats = engine._forward_stats
        return EpochReport(
            epoch=engine._epoch,
            epoch_time_s=t_end - t_start,
            loss=loss_value,
            comm_bytes=sum(s.total_bytes for s in stats),
            forward_time_s=t_forward - t_start,
            backward_time_s=t_backward - t_forward,
            allreduce_time_s=t_end - t_backward,
            cache_hits=sum(s.cache_hits for s in stats),
            cache_misses=sum(s.cache_misses for s in stats),
            refresh_bytes=sum(s.refresh_bytes for s in stats),
            comm_saved_bytes=sum(s.saved_bytes for s in stats),
            cache_refreshed=refreshed,
        )

    # -- forward -------------------------------------------------------
    def forward(self, plan: EnginePlan, training: bool):
        engine = self.engine
        m = engine.cluster.num_workers
        h_values: List[List[np.ndarray]] = [
            [None] * m for _ in range(engine.num_layers + 1)
        ]
        in_tensors: List[List[Tensor]] = [
            [None] * m for _ in range(engine.num_layers)
        ]
        out_tensors: List[List[Tensor]] = [
            [None] * m for _ in range(engine.num_layers)
        ]
        for l in range(1, engine.num_layers + 1):
            engine._charge_forward_layer(plan, l)
            layer = engine.model.layer(l)
            tp = plan.is_tp_layer(l)
            # FuseScatterGatherPass lowers the layer to the fused
            # segment kernel (bit-identical; see passes.py).
            program = engine.program_
            fused = (
                program is not None
                and program.layers[l - 1].fused_reducer is not None
            )
            layer_forward = layer.forward_fused if fused else layer.forward
            for w in range(m):
                if tp and w > 0:
                    # Tensor-parallel layer: the recombined slices ARE
                    # the full-width rows, so the full-graph block is
                    # computed once (worker 0) and aliased -- bit-
                    # identical to each worker's slice share by
                    # construction, with no redundant flops.
                    h_values[l][w] = h_values[l][0]
                    in_tensors[l - 1][w] = in_tensors[l - 1][0]
                    out_tensors[l - 1][w] = out_tensors[l - 1][0]
                    continue
                block = plan.blocks[l - 1][w]
                rows = engine._gather_inputs(plan, h_values, l, w, block)
                h_in = Tensor(rows, requires_grad=training)
                if training:
                    out = layer_forward(block, h_in)
                else:
                    with no_grad():
                        out = layer_forward(block, h_in)
                h_values[l][w] = out.data
                in_tensors[l - 1][w] = h_in
                out_tensors[l - 1][w] = out
            engine._sync()
        return h_values, in_tensors, out_tensors

    def gather_inputs(
        self,
        plan: EnginePlan,
        h_values: List[List[np.ndarray]],
        l: int,
        w: int,
        block: LayerBlock,
    ) -> np.ndarray:
        """Assemble h^{l-1} rows for a block (GetFromDepNbr).

        Numerically, rows come from the feature matrix (layer 1) or from
        the producing worker's stored output (redundant copies are
        bit-identical, so reading the owner's copy is exact).
        """
        engine = self.engine
        ids = block.input_vertices
        if l == 1:
            # Features are static, so a "stale" cached feature row is
            # bit-identical to a fresh fetch; no override needed.
            return engine.graph.features[ids]
        rows = np.empty((len(ids), engine.dims[l - 1]), dtype=np.float32)
        pos_local = engine._pos_in_compute[l - 2][w][ids]
        local = pos_local >= 0
        if local.any():
            rows[local] = h_values[l - 1][w][pos_local[local]]
        remote_ids = ids[~local]
        if len(remote_ids):
            owners = engine.assignment[remote_ids]
            for j in np.unique(owners):
                sel = owners == j
                pos = engine._pos_in_compute[l - 2][j][remote_ids[sel]]
                if (pos < 0).any():
                    raise RuntimeError(
                        "owner did not compute a vertex it owns (plan bug)"
                    )
                rows[np.where(~local)[0][sel]] = h_values[l - 1][j][pos]
        engine._apply_historical_cache(l, w, block, rows)
        return rows

    def apply_historical_cache(
        self, l: int, w: int, block: LayerBlock, rows: np.ndarray
    ) -> None:
        """Serve/refresh worker ``w``'s stale-cached rows for layer ``l``.

        ``rows`` arrives holding the exact (owner-computed) values.  On a
        training refresh epoch the stale set's rows are stored into the
        historical cache (exact, newly stamped).  Otherwise any entry
        still within the staleness bound overrides its exact row --
        that is the bounded-staleness approximation; expired or missing
        entries keep the exact value ("exact value on miss").
        """
        engine = self.engine
        if not engine._cache_active or l < 2:
            return
        srows = engine._stale_rows[l - 1][w]
        if srows is None or len(srows) == 0:
            return
        reader = self._reader(w)
        sids = block.input_vertices[srows]
        if engine._cache_refreshing and engine._in_training_forward:
            reader.refresh(l, sids, rows[srows], engine._epoch)
            return
        reader.override_with_cached(l, sids, engine._epoch, rows, srows)

    # -- loss ----------------------------------------------------------
    def compute_loss(self, plan, out_tensors):
        engine = self.engine
        m = engine.cluster.num_workers
        train_mask = engine.graph.train_mask
        if train_mask is None:
            raise ValueError("graph has no train mask; call set_split()")
        total_train = int(train_mask.sum())
        loss_tensors = []
        loss_value = 0.0
        for w in range(m):
            owned = engine.partitioning.part(w)
            mine = owned[train_mask[owned]]
            if len(mine) == 0:
                loss_tensors.append(None)
                continue
            rows = engine._pos_in_compute[engine.num_layers - 1][w][mine]
            logits = out_tensors[engine.num_layers - 1][w][rows]
            log_probs = F.log_softmax(logits, axis=-1)
            picked = log_probs[
                (np.arange(len(mine)), engine.graph.labels[mine])
            ]
            loss_w = -picked.sum() / float(total_train)
            loss_tensors.append(loss_w)
            loss_value += float(loss_w.data)
            engine.accountant.charge_loss(w, len(mine))
        return loss_value, loss_tensors

    # -- backward ------------------------------------------------------
    def backward(self, plan, in_tensors, out_tensors, loss_tensors):
        engine = self.engine
        m = engine.cluster.num_workers
        # Pending output gradients per (layer, worker), aligned with the
        # worker's compute set rows.
        grad_acc: List[List[Optional[np.ndarray]]] = [
            [None] * m for _ in range(engine.num_layers)
        ]
        for l in range(engine.num_layers, 0, -1):
            tp = plan.is_tp_layer(l)
            for w in range(m):
                if l == engine.num_layers:
                    if loss_tensors[w] is not None:
                        loss_tensors[w].backward()
                else:
                    seed = grad_acc[l - 1][w]
                    if seed is None:
                        continue
                    out_tensors[l - 1][w].backward(seed)
                if l > 1 and not tp:
                    grad_in = in_tensors[l - 1][w].grad
                    if grad_in is not None:
                        engine._route_input_grads(plan, grad_acc, l, w, grad_in)
            if l > 1 and tp:
                # TP layer: tensors are aliased across workers, so the
                # shared input grad (all per-worker loss/seed backwards
                # have accumulated into it by now) routes exactly once.
                grad_in = in_tensors[l - 1][0].grad
                if grad_in is not None:
                    engine._route_input_grads(plan, grad_acc, l, 0, grad_in)
            engine._charge_backward_layer(plan, l)
            engine._sync()

    def route_input_grads(self, plan, grad_acc, l, w, grad_rows):
        """PostToDepNbr: push input grads to whoever computed the value.

        Rows served from the historical cache on a non-refresh epoch are
        treated as constants: their value was not produced by the owner
        this epoch, so no gradient flows back (the standard historical-
        embedding approximation).  On refresh epochs the stale set's
        inputs are the owners' current values and gradients flow
        normally -- which is what makes ``tau = 0`` bit-identical to
        DepComm.
        """
        engine = self.engine
        block = plan.blocks[l - 1][w]
        ids = block.input_vertices
        pos_local = engine._pos_in_compute[l - 2][w][ids]
        local = pos_local >= 0
        engine._accumulate(
            plan, grad_acc, l - 2, w, pos_local[local], grad_rows[local]
        )
        push = ~local
        if engine._cache_active and not engine._cache_refreshing:
            srows = engine._stale_rows[l - 1][w]
            if srows is not None and len(srows):
                push = push.copy()
                push[srows] = False
        remote_ids = ids[push]
        if len(remote_ids) == 0:
            return
        remote_rows = grad_rows[push]
        owners = engine.assignment[remote_ids]
        for j in np.unique(owners):
            sel = owners == j
            pos = engine._pos_in_compute[l - 2][j][remote_ids[sel]]
            engine._accumulate(plan, grad_acc, l - 2, j, pos, remote_rows[sel])

    def accumulate(self, plan, grad_acc, layer_idx, worker, positions, rows):
        engine = self.engine
        if len(positions) == 0:
            return
        if plan.is_tp_layer(layer_idx + 1):
            # The TP layer's output tensor is computed once (worker 0)
            # and aliased; every worker's compute set is the identical
            # full-vertex ordering, so positions transfer unchanged and
            # all gradient contributions accumulate into worker 0's
            # seed for the single shared backward.
            worker = 0
        acc = grad_acc[layer_idx][worker]
        if acc is None:
            shape = (
                len(plan.compute_sets[layer_idx][worker]),
                engine.dims[layer_idx + 1],
            )
            acc = np.zeros(shape, dtype=np.float32)
            grad_acc[layer_idx][worker] = acc
        np.add.at(acc, positions, rows)

    # -- evaluation ----------------------------------------------------
    def evaluate(self, mask: Optional[np.ndarray] = None) -> float:
        """Accuracy over ``mask`` (default: test mask), forward-only."""
        engine = self.engine
        plan = engine.plan()
        if mask is None:
            mask = engine.graph.test_mask
        if mask is None:
            raise ValueError("graph has no test mask; call set_split()")
        h_values, _, out_tensors = engine._forward(plan, training=False)
        correct = 0
        total = 0
        L = engine.num_layers
        for w in range(engine.cluster.num_workers):
            owned = engine.partitioning.part(w)
            mine = owned[mask[owned]]
            if len(mine) == 0:
                continue
            rows = engine._pos_in_compute[L - 1][w][mine]
            predictions = h_values[L][w][rows].argmax(axis=1)
            correct += int((predictions == engine.graph.labels[mine]).sum())
            total += len(mine)
        return correct / total if total else 0.0
