"""The accountant: all timeline/communication charging for an engine.

Everything that turns the compiled program's static quantities (counts,
flops, byte volumes) into seconds on the cluster timeline lives here:
the layer compute split, the forward/backward exchange charges, the
parameter synchronisation, the loss charge, the memory model, and the
timing-only epoch fast path.  The executor (:mod:`.executor`) produces
numbers; the accountant produces time -- the split the unified
execution layer exists for.

Dispatch still flows through the engine's historical hook methods
(``_forward_volumes``, ``_layer_compute_split``, ``_cache_traffic``,
...), which are now one-line shims onto this class: subclasses that
override a hook (ROC's broadcast volumes, shared-memory chunk sizing)
keep winning, exactly as before the refactor.

Seconds are evaluated at *charge time* against ``engine._device(w)``
(the device view under straggler faults), never baked into the IR.

The one optimization pass (paper Section 5.4) surfaces here: when
:class:`.passes.OverlapExchangePass` marked a worker's exchange as
foldable, :meth:`LayerAccountant.charge_forward_layer` overlaps that
worker's VertexForward (dense) time with the exchange's communication
window -- the GPU total charged is unchanged, the wall-clock shrinks by
at most the window's idle slack, and the folded share is visible in the
trace as a GPU interval inside the window plus an ``overlap`` span.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cache.budget import CACHE_MEMORY_LABEL
from repro.cluster.timeline import GPU, NET_SEND
from repro.comm.scheduler import CacheTraffic, ExchangeStats, run_exchange
from repro.execution.plan import EnginePlan
from repro.execution.program import ComputeSpec, layer_compute_specs

# Host (DRAM) budget per worker, scaled like device memory (the paper's
# nodes have 62 GB).  DepCache keeps its closure tape in host memory.
HOST_MEMORY_BYTES = 230 * 1024 * 1024

# Fraction of a layer's forward compute charged again during backward.
BACKWARD_MULTIPLIER = 2.0


class LayerAccountant:
    """Charges one engine's execution to its cluster timeline."""

    def __init__(self, engine):
        self.engine = engine

    # -- compute split -------------------------------------------------
    def _specs_for(self, plan: EnginePlan, l: int) -> List[ComputeSpec]:
        program = self.engine.program_
        if program is not None and plan is self.engine.plan_:
            return program.layers[l - 1].compute_specs
        return layer_compute_specs(self.engine, plan, l)

    def _program_layer(self, plan: EnginePlan, l: int):
        """The compiled LayerProgram for ``l`` when ``plan`` is current
        (pass annotations live there); None otherwise."""
        program = self.engine.program_
        if program is None or plan is not self.engine.plan_:
            return None
        return program.layers[l - 1]

    def layer_compute_split(self, plan: EnginePlan, l: int):
        """Per-worker (chunk_compute, local_compute, dense) seconds."""
        engine = self.engine
        m = engine.cluster.num_workers
        chunk_compute = np.zeros((m, m))
        local_compute = np.zeros(m)
        dense = np.zeros(m)
        d_in = engine.dims[l - 1]
        specs = self._specs_for(plan, l)
        # Fused layers skip the materialised per-edge intermediate, so
        # the charged sparse time shrinks by the layer's declared factor
        # (the counts in the IR stay untouched).
        lp = self._program_layer(plan, l)
        sparse_factor = (
            engine.model.layer(l).fused_flops_factor()
            if lp is not None and lp.fused_reducer is not None
            else 1.0
        )
        for w in range(m):
            device = engine._device(w)
            spec = specs[w]
            dense[w] = device.dense_time(spec.dense_flops)
            if spec.num_edges == 0:
                continue
            per_edge = sparse_factor * spec.sparse_flops / spec.num_edges
            for j in range(m):
                count = int(spec.chunk_edges[j])
                if count == 0:
                    continue
                vertices = int(spec.chunk_vertices[j])
                h2d = device.transfer_time(vertices * d_in * 4 + count * 12)
                chunk_compute[j, w] = device.sparse_time(per_edge * count) + h2d
            local_edges = int(spec.local_edges)
            if local_edges:
                h2d = (
                    device.transfer_time(local_edges * 12)
                    if engine.chunked_execution
                    else 0.0
                )
                local_compute[w] = device.sparse_time(per_edge * local_edges) + h2d
        return chunk_compute, local_compute, dense

    # -- volumes -------------------------------------------------------
    def forward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        """Byte-volume matrix of layer ``l``'s forward exchange."""
        return plan.exchanges[l - 1].volume_matrix(self.engine.dims[l - 1])

    def backward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        """Byte-volume matrix of layer ``l``'s gradient return."""
        if l > 1:
            return self.engine._forward_volumes(plan, l).T
        return np.zeros((self.engine.cluster.num_workers,) * 2)

    def cache_traffic(
        self, plan: EnginePlan, l: int, backward: bool
    ) -> Optional[CacheTraffic]:
        """The stale-cached share of layer ``l``'s exchange, if any."""
        engine = self.engine
        if not engine._cache_active:
            return None
        exchange = plan.refresh_exchanges[l - 1]
        if exchange.total_vertices == 0:
            return None
        volumes = exchange.volume_matrix(engine.dims[l - 1])
        if backward:
            # Gradient return happens only when the fetch happened; no
            # grads flow into layer-1 inputs (features), matching
            # backward_volumes.
            if l == 1:
                return None
            return CacheTraffic(
                volumes=volumes.T, refresh=engine._cache_refreshing, entries=0
            )
        return CacheTraffic(
            volumes=volumes,
            refresh=engine._cache_refreshing,
            entries=exchange.total_vertices,
        )

    # -- layer charges -------------------------------------------------
    def charge_forward_layer(self, plan: EnginePlan, l: int) -> ExchangeStats:
        engine = self.engine
        if plan.is_tp_layer(l):
            from repro.execution.tp import tp_charge_forward_layer

            return tp_charge_forward_layer(self, plan, l)
        volumes = engine._forward_volumes(plan, l)
        chunk_compute, local_compute, dense = engine._layer_compute_split(plan, l)
        depth, staggered = self._exchange_schedule(plan, l)
        stats = run_exchange(
            engine.timeline,
            engine.cluster.network,
            volumes,
            chunk_compute=chunk_compute,
            local_compute=local_compute,
            options=engine.comm,
            barrier=False,
            bytes_per_message=engine.dims[l - 1] * 4,
            faults=engine.faults,
            retry=engine.retry,
            cache=engine._cache_traffic(plan, l, backward=False),
            pipeline_depth=depth,
            staggered=staggered,
        )
        engine._forward_stats.append(stats)
        self._charge_dense(plan, l, dense, stats, volumes)
        return stats

    def _exchange_schedule(self, plan: EnginePlan, l: int):
        """Pass-written (pipeline_depth, staggered) for layer ``l``'s
        exchange; (1, False) charges bit-identically to no pass."""
        lp = self._program_layer(plan, l)
        if lp is None:
            return 1, False
        ex = lp.exchange
        return int(ex.pipeline_depth), ex.ring_order is not None

    def _fold_flags(self, plan: EnginePlan, l: int) -> Optional[np.ndarray]:
        """Pass-written fold markers for this layer (None = charge as-is)."""
        lp = self._program_layer(plan, l)
        if lp is None:
            return None
        # TP layers fold the dense into the unslice (post) exchange --
        # the phase whose window precedes the owned-rows VertexForward.
        ex = lp.post_exchange if lp.post_exchange is not None else lp.exchange
        fold = ex.fold_dense
        if fold is None or not fold.any():
            return None
        return fold

    def _charge_dense(
        self,
        plan: EnginePlan,
        l: int,
        dense: np.ndarray,
        stats: ExchangeStats,
        volumes: np.ndarray,
    ) -> None:
        engine = self.engine
        timeline = engine.timeline
        fold = self._fold_flags(plan, l)
        depth, staggered = self._exchange_schedule(plan, l)
        for w in range(engine.cluster.num_workers):
            d = dense[w]
            saved = 0.0
            if fold is not None and fold[w] and d > 0:
                saved = self._overlap_saving(
                    stats, volumes, w, d, depth, staggered
                )
            if saved <= 0:
                timeline.advance(w, GPU, d)
                continue
            # The folded share ran inside the exchange's comm window:
            # record it there (GPU totals unchanged), advance the clock
            # only by the remainder, and leave an inspectable span.
            now = timeline.now(w)
            timeline.record_interval(w, GPU, now - saved, saved)
            timeline.record_span(
                w, "overlap", now - saved, now, layer=l, saved_s=saved
            )
            timeline.advance(w, GPU, d - saved)

    def _overlap_saving(
        self,
        stats: ExchangeStats,
        volumes: np.ndarray,
        w: int,
        dense_w: float,
        pipeline_depth: int = 1,
        staggered: bool = False,
    ) -> float:
        """Dense seconds the exchange window can absorb for worker ``w``.

        The window's idle slack is ``comm - fill - busy``: after the
        first chunk lands (``fill``, divided by the chunk-pipeline
        depth when that pass split senders) and the already-overlapped
        chunk compute (``busy``, only when the P optimization pipelines
        it), the GPU sits idle until the last byte arrives.  Clamped to
        ``[0, dense_w]``, so folding can never increase wall-clock, and
        a single-chunk exchange (nothing to pipeline behind) folds
        nothing.
        """
        engine = self.engine
        network = engine.cluster.network
        m = volumes.shape[0]
        congested = not (engine.comm.ring or staggered)
        wires = [
            network.wire_time(volumes[j, w], congested=congested)
            for j in range(m)
            if j != w and volumes[j, w] > 0
        ]
        if len(wires) < 2:
            return 0.0
        wait = (
            float(stats.retry_wait_s[w])
            if stats.retry_wait_s is not None
            else 0.0
        )
        comm = max(float(stats.send_s[w]) + wait, float(stats.recv_s[w]))
        fill = min(wires) / max(int(pipeline_depth), 1)
        busy = float(stats.compute_s[w]) if engine.comm.overlap else 0.0
        return min(float(dense_w), max(0.0, comm - fill - busy))

    def charge_backward_layer(self, plan: EnginePlan, l: int) -> None:
        engine = self.engine
        if plan.is_tp_layer(l):
            from repro.execution.tp import tp_charge_backward_layer

            tp_charge_backward_layer(self, plan, l)
            return
        chunk_compute, local_compute, dense = engine._layer_compute_split(plan, l)
        compute = (
            chunk_compute.sum(axis=0) + local_compute + dense
        ) * BACKWARD_MULTIPLIER
        volumes = engine._backward_volumes(plan, l)
        # The gradient return retraces the forward schedule, so the
        # pass-written ring/pipeline annotations apply symmetrically.
        depth, staggered = self._exchange_schedule(plan, l)
        run_exchange(
            engine.timeline,
            engine.cluster.network,
            volumes,
            chunk_compute=None,
            local_compute=compute,
            options=engine.comm,
            barrier=False,
            bytes_per_message=engine.dims[l - 1] * 4,
            faults=engine.faults,
            retry=engine.retry,
            cache=engine._cache_traffic(plan, l, backward=True),
            pipeline_depth=depth,
            staggered=staggered,
        )

    # -- loss / parameter sync -----------------------------------------
    def charge_loss(self, worker: int, num_train: int) -> None:
        """Prediction + loss cost: a softmax over the classes.

        The single home of the loss flops formula -- the numeric path
        (executor) and the timing-only path (:meth:`charge_epoch`) both
        charge through here, so estimate and charge cannot drift.
        """
        engine = self.engine
        flops = 6.0 * num_train * engine.dims[-1]
        engine.timeline.advance(
            worker, GPU, engine._device(worker).dense_time(flops)
        )

    def charge_allreduce(self) -> None:
        """Parameter synchronisation: ring all-reduce or parameter server.

        The paper uses synchronous all-reduce and notes the model "is
        orthogonal to and can be replaced by the Parameter-Server
        model"; both are implemented (see the update-mode ablation
        benchmark for the comparison).
        """
        engine = self.engine
        m = engine.cluster.num_workers
        if m == 1:
            return
        network = engine.cluster.network
        param_bytes = engine.model.parameter_bytes()
        if engine.update_mode == "parameter-server":
            # Every worker pushes gradients to and pulls parameters from
            # one server whose NIC serialises all m transfers.
            wire = 2.0 * m * param_bytes / network.bytes_per_s
            latency = 2.0 * network.latency_s
        else:
            # Ring all-reduce: 2 (m-1)/m of the data crosses each link.
            wire = 2.0 * (m - 1) / m * param_bytes / network.bytes_per_s
            latency = 2.0 * (m - 1) * network.latency_s
        if engine.faults is not None:
            # Both collectives are bounded by the slowest participating
            # link (ring: every link is on the critical path; PS: the
            # server serialises all transfers).
            t = engine.timeline.makespan
            schedule = engine.faults.schedule
            divisor = 1.0
            extra_latency = 0.0
            for i in range(m):
                for j in range(m):
                    if i == j:
                        continue
                    d, e = schedule.link_degradation(i, j, t)
                    divisor = max(divisor, d)
                    extra_latency = max(extra_latency, e)
            wire *= divisor
            hops = 2.0 * (m - 1) if engine.update_mode == "allreduce" else 2.0
            latency += extra_latency * hops
        for w in range(m):
            engine.timeline.advance(
                w, NET_SEND, wire + latency, num_bytes=int(param_bytes)
            )
        engine._sync()

    # -- timing-only epoch ---------------------------------------------
    def charge_epoch(self) -> float:
        """Charge one epoch's modeled time WITHOUT numerical execution.

        The timing model depends only on the plan (block sizes, volumes)
        -- not on tensor values -- so performance benchmarks use this
        fast path; accuracy experiments use ``run_epoch``.  Both paths
        charge the same per-layer, loss, and all-reduce methods of this
        accountant, so the estimate cannot drift from the charged value.
        Returns the epoch's modeled seconds.
        """
        engine = self.engine
        plan = engine.plan()
        engine._begin_epoch_cache()
        engine._forward_stats = []
        t_start = engine._sync()
        for l in range(1, engine.num_layers + 1):
            engine._charge_forward_layer(plan, l)
            engine._sync()
        if engine.graph.train_mask is not None:
            for w in range(engine.cluster.num_workers):
                owned = engine.partitioning.part(w)
                mine = int(engine.graph.train_mask[owned].sum())
                self.charge_loss(w, mine)
        engine._sync()
        for l in range(engine.num_layers, 0, -1):
            engine._charge_backward_layer(plan, l)
            engine._sync()
        engine._charge_allreduce()
        engine._epoch += 1
        return engine._sync() - t_start


# ----------------------------------------------------------------------
# Memory model
# ----------------------------------------------------------------------
def account_memory(engine, plan: EnginePlan) -> None:
    """Register resident bytes; raises OutOfMemoryError when over."""
    from repro.cluster.memory import MemoryTracker

    m = engine.cluster.num_workers
    device_budget = engine.cluster.device.memory_bytes
    plan.device_memory = [MemoryTracker(w, device_budget) for w in range(m)]
    plan.host_memory = [MemoryTracker(w, HOST_MEMORY_BYTES) for w in range(m)]
    for w in range(m):
        device = plan.device_memory[w]
        host = plan.host_memory[w]
        tape = host if engine.tape_location == "host" else device
        # Features resident for every locally available layer-1
        # input (stale-cached rows are accounted as cache entries).
        if plan.is_tp_layer(1):
            from repro.execution.tp import tp_feature_bytes

            tape.allocate(tp_feature_bytes(engine, plan, w), "features")
        else:
            feat_rows = (
                plan.blocks[0][w].num_inputs
                - len(plan.comm_ids[0][w])
                - len(plan.stale_deps[0][w])
            )
            tape.allocate(feat_rows * engine.dims[0] * 4, "features")
        # Historical-embedding entries live in host memory alongside
        # the DepCache closures they share the budget with.
        cache_bytes = sum(
            len(plan.stale_deps[l][w]) * engine.dims[l] * 4
            for l in range(engine.num_layers)
        )
        if cache_bytes:
            host.allocate(cache_bytes, CACHE_MEMORY_LABEL)
        peak_chunk = 0
        for l in range(1, engine.num_layers + 1):
            if plan.is_tp_layer(l):
                from repro.execution.tp import tp_account_layer_memory

                peak_chunk = max(
                    peak_chunk,
                    tp_account_layer_memory(engine, plan, l, w, tape, device),
                )
                continue
            block = plan.blocks[l - 1][w]
            layer = engine.model.layer(l)
            # Activations (inputs + outputs) live on the tape until
            # backward.
            tape.allocate(
                block.num_inputs * engine.dims[l - 1] * 4
                + block.num_outputs * engine.dims[l] * 4,
                f"activations_l{l}",
            )
            edge_bytes = int(
                layer.edge_tensor_bytes(block) * engine.tape_multiplier
            )
            if engine.chunked_execution:
                # Tape edge tensors live in host memory; the device
                # holds one source-chunk working set at a time.
                tape.allocate(edge_bytes, f"edge_tape_l{l}")
                chunk_edges = engine._max_chunk_edges(plan, l, w)
                if block.num_edges:
                    chunk_bytes = int(
                        edge_bytes * chunk_edges / block.num_edges
                    )
                else:
                    chunk_bytes = 0
                io_bytes = (
                    chunk_edges * 12
                    + block.num_outputs
                    * (engine.dims[l - 1] + engine.dims[l]) * 4
                )
                peak_chunk = max(peak_chunk, chunk_bytes + io_bytes)
            else:
                # Whole tape resident on the executing device.
                tape.allocate(edge_bytes, f"edge_tape_l{l}")
        if engine.chunked_execution:
            # A chunk that doesn't fit is subdivided further (the
            # point of chunked execution: "only needs to load a
            # chunk ... at a time"), so the working set is capped by
            # the budget rather than OOMing the device.
            device.allocate(
                min(peak_chunk, int(device.budget_bytes * 0.8)),
                "chunk_working_set",
            )


def max_chunk_edges(engine, plan: EnginePlan, l: int, w: int) -> int:
    """Largest per-source-worker edge chunk in worker ``w``'s block."""
    block = plan.blocks[l - 1][w]
    if block.num_edges == 0:
        return 0
    owners = engine.assignment[block.edge_src_global]
    counts = np.bincount(owners, minlength=engine.cluster.num_workers)
    return int(counts.max())
