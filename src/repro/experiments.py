"""Programmatic experiment registry and runner.

Every benchmark in ``benchmarks/`` is also reachable as a library call:
``run_experiment("fig2")`` executes the same code path and returns the
raw result structures, and ``run_all`` writes one JSON file with every
table and figure -- the artifact EXPERIMENTS.md is checked against.

The registry imports lazily from the ``benchmarks`` directory so the
package itself has no hard dependency on it being installed; running
from a source checkout (the normal case) always works.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

# experiment id -> (bench module filename, description)
REGISTRY: Dict[str, tuple] = {
    "fig2": ("bench_fig2_motivation.py",
             "DepCache vs DepComm: graphs, hidden sizes, clusters"),
    "fig9": ("bench_fig9_gain_analysis.py",
             "Hybrid + R/L/P optimization gains"),
    "fig10": ("bench_fig10_overall.py",
              "Overall comparison vs DistDGL/ROC/DepCache/DepComm"),
    "fig11": ("bench_fig11_ratio_sweep.py",
              "Cache/comm ratio sweep"),
    "fig12": ("bench_fig12_scaling.py",
              "Scaling 1-16 nodes"),
    "fig13": ("bench_fig13_utilization.py",
              "GPU/CPU/network utilization"),
    "fig14": ("bench_fig14_accuracy.py",
              "Accuracy and time-to-accuracy (real training)"),
    "fig15": ("bench_fig15_partitioning.py",
              "Hybrid vs DepComm under graph partitioners"),
    "table3": ("bench_table3_hybrid_cost.py",
               "100-epoch runtimes + preprocessing overhead"),
    "table4": ("bench_table4_shared_memory.py",
               "Shared-memory (CPU) baselines"),
    "table5": ("bench_table5_single_gpu.py",
               "Single-GPU baselines"),
    "ablation_costmodel": ("bench_ablation_costmodel.py",
                           "mu and memory-budget ablation"),
    "ablation_depth": ("bench_ablation_depth.py",
                       "model-depth ablation"),
    "ablation_oracle": ("bench_ablation_greedy_vs_oracle.py",
                        "greedy vs exhaustive oracle"),
    "ablation_sampling": ("bench_ablation_sampling.py",
                          "sampling fanout/batch ablation"),
    "ablation_probe_error": ("bench_ablation_probe_error.py",
                             "Hybrid robustness to probe error"),
    "tp": ("bench_tp.py",
           "Tensor-parallel crossover: skew x hidden-dim sweep"),
}


def _load_bench_module(filename: str):
    path = _BENCH_DIR / filename
    if not path.exists():
        raise FileNotFoundError(
            f"benchmark module {path} not found (run from a source checkout)"
        )
    # The bench modules import their shared helpers as `common`.
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def list_experiments() -> List[str]:
    """The registered experiment ids (paper tables, figures, ablations)."""
    return sorted(REGISTRY)


def run_experiment(experiment_id: str):
    """Run one experiment's ``run_experiment()``; returns its raw result."""
    try:
        filename, _ = REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(list_experiments())
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    module = _load_bench_module(filename)
    return module.run_experiment()


def _jsonable(value):
    """Coerce numpy scalars/arrays and tuple keys for JSON output."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float) and value != value:
        return "OOM"
    return value


def run_all(
    output_path: Optional[Union[str, Path]] = None,
    only: Optional[List[str]] = None,
    progress: Callable[[str], None] = print,
) -> Dict[str, object]:
    """Run every registered experiment and (optionally) write JSON.

    ``only`` restricts to a subset of experiment ids.  Returns the
    results dict; with ``output_path`` set, also writes it to disk with
    wall-clock metadata per experiment.
    """
    chosen = only or list_experiments()
    results: Dict[str, object] = {}
    for experiment_id in chosen:
        _, description = REGISTRY[experiment_id]
        progress(f"[{experiment_id}] {description}")
        started = time.time()
        raw = run_experiment(experiment_id)
        results[experiment_id] = {
            "description": description,
            "wall_seconds": round(time.time() - started, 2),
            "result": _jsonable(raw),
        }
    if output_path is not None:
        path = Path(output_path)
        path.write_text(json.dumps(results, indent=2))
        progress(f"results written to {path}")
    return results
