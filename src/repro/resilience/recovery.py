"""Recovery policy data types (used by :mod:`repro.training.resilient`).

Recovery follows the classic checkpoint/rollback-restart discipline:
every ``checkpoint_every`` epochs the trainer snapshots model *and*
optimizer state; when a barrier detects a crash, a replacement node is
provisioned (``provision_s``), the engine re-transfers the worker's
partition data plus its engine-specific dependency state -- DepCache
must rebuild its large replicated closures, DepComm only re-registers
mirrors -- and training replays from the last checkpoint.  Because the
optimizer state is checkpointed too, the replayed trajectory is
bit-identical to the uninterrupted one; only the modeled clock differs.

Two alternatives to plain restart exist (``strategy``):

- ``"shrink"`` -- never wait for a replacement: the survivors absorb
  the dead worker's partition (:mod:`repro.resilience.elastic`) and
  training continues on the (N-1)-worker cluster.
- ``"auto"`` -- shrink when the crash is *permanent* (no replacement
  can exist) or when ``provision_s`` exceeds ``provision_deadline_s``
  (a replacement is too slow to be worth waiting for); restart
  otherwise.

:meth:`RecoveryPolicy.auto` tunes ``checkpoint_every`` from the fault
schedule's crash rate with the Young/Daly optimal-checkpoint-interval
formula ``W_opt = sqrt(2 * C * MTBF)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # avoid importing faults at runtime for a type hint
    from repro.resilience.faults import FaultSchedule

_STRATEGIES = ("restart", "shrink", "auto")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the trainer checkpoints and reacts to crashes.

    Attributes
    ----------
    checkpoint_every:
        Snapshot model + optimizer state every this many epochs (the
        initial state counts as epoch-0 checkpoint).
    provision_s:
        Modeled wall seconds to provision a replacement worker (VM
        spin-up, process start) before state re-transfer begins.
    max_recoveries:
        Abort (re-raise) after this many recoveries in one run, so a
        pathological schedule cannot loop forever.
    strategy:
        ``"restart"`` (provision a replacement, the PR-1 behavior),
        ``"shrink"`` (survivors absorb the dead partition), or
        ``"auto"`` (shrink for permanent crashes or when provisioning
        blows ``provision_deadline_s``; restart otherwise).
    provision_deadline_s:
        Under ``"auto"``, shrink instead of restarting when
        ``provision_s`` exceeds this; ``None`` means only *permanent*
        crashes shrink.
    rejoin_after_epochs:
        After a shrink, grow back to the original cluster once this
        many epochs completed on the shrunk cluster (models the
        replacement finally arriving); ``None`` never rejoins.
    """

    checkpoint_every: int = 5
    provision_s: float = 0.05
    max_recoveries: int = 8
    strategy: str = "restart"
    provision_deadline_s: Optional[float] = None
    rejoin_after_epochs: Optional[int] = None

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.provision_s < 0:
            raise ValueError("provision_s must be >= 0")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.provision_deadline_s is not None and self.provision_deadline_s < 0:
            raise ValueError("provision_deadline_s must be >= 0")
        if self.rejoin_after_epochs is not None and self.rejoin_after_epochs < 1:
            raise ValueError("rejoin_after_epochs must be >= 1")

    # ------------------------------------------------------------------
    def should_shrink(self, permanent: bool) -> bool:
        """Whether this crash is handled by shrinking the cluster."""
        if self.strategy == "shrink":
            return True
        if self.strategy == "auto":
            if permanent:
                return True
            return (
                self.provision_deadline_s is not None
                and self.provision_s > self.provision_deadline_s
            )
        return False

    @classmethod
    def auto(
        cls,
        schedule: "FaultSchedule",
        epoch_cost_s: float,
        checkpoint_cost_s: Optional[float] = None,
        horizon_s: Optional[float] = None,
        **overrides,
    ) -> "RecoveryPolicy":
        """Tune ``checkpoint_every`` to the schedule's crash rate.

        Young/Daly: the optimal work between checkpoints is
        ``W_opt = sqrt(2 * C * MTBF)`` where ``C`` is the checkpoint
        cost and MTBF the mean time between failures.  MTBF is
        estimated as ``horizon_s / num_crashes`` (``horizon_s``
        defaults to the last crash time, floored at one epoch);
        ``checkpoint_cost_s`` defaults to a tenth of an epoch (the
        snapshot is host-memory-bound, much cheaper than an epoch).
        ``overrides`` pass through to the policy, and an explicit
        ``checkpoint_every`` override wins over the tuned value.
        """
        if epoch_cost_s <= 0:
            raise ValueError("epoch_cost_s must be positive")
        if checkpoint_cost_s is None:
            checkpoint_cost_s = 0.1 * epoch_cost_s
        if checkpoint_cost_s <= 0:
            raise ValueError("checkpoint_cost_s must be positive")
        crashes = schedule.crashes() if schedule else []
        if "checkpoint_every" in overrides:
            return cls(**overrides)
        if not crashes:
            # No crashes expected: checkpoint rarely (cap, not never --
            # surprises outside the schedule should not lose everything).
            return cls(checkpoint_every=50, **overrides)
        if horizon_s is None:
            horizon_s = max(max(c.at_time for c in crashes), epoch_cost_s)
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        mtbf_s = horizon_s / len(crashes)
        w_opt_s = math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)
        checkpoint_every = max(1, int(round(w_opt_s / epoch_cost_s)))
        return cls(checkpoint_every=checkpoint_every, **overrides)

    def with_strategy(self, strategy: str) -> "RecoveryPolicy":
        return replace(self, strategy=strategy)


@dataclass(frozen=True)
class RecoveryEvent:
    """One crash-and-recover episode, as the chaos report shows it.

    ``strategy`` records how this particular crash was handled
    (``"restart"``, ``"shrink"``, or ``"rejoin"`` for the grow-back
    step); ``num_workers_after`` is the cluster size training continued
    with.
    """

    epoch: int  # epoch that was executing when the crash was detected
    worker: int
    detected_at_s: float  # synchronised clock when the detector fired
    recovery_s: float  # provision + state re-transfer + replan
    refetch_bytes: int  # dependency state moved to the replacement
    rolled_back_to_epoch: int  # training resumes after this epoch
    strategy: str = "restart"
    num_workers_after: int = 0
