"""Recovery policy data types (used by :mod:`repro.training.resilient`).

Recovery follows the classic checkpoint/rollback-restart discipline:
every ``checkpoint_every`` epochs the trainer snapshots model *and*
optimizer state; when a barrier detects a crash, a replacement node is
provisioned (``provision_s``), the engine re-transfers the worker's
partition data plus its engine-specific dependency state -- DepCache
must rebuild its large replicated closures, DepComm only re-registers
mirrors -- and training replays from the last checkpoint.  Because the
optimizer state is checkpointed too, the replayed trajectory is
bit-identical to the uninterrupted one; only the modeled clock differs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the trainer checkpoints and reacts to crashes.

    Attributes
    ----------
    checkpoint_every:
        Snapshot model + optimizer state every this many epochs (the
        initial state counts as epoch-0 checkpoint).
    provision_s:
        Modeled wall seconds to provision a replacement worker (VM
        spin-up, process start) before state re-transfer begins.
    max_recoveries:
        Abort (re-raise) after this many recoveries in one run, so a
        pathological schedule cannot loop forever.
    """

    checkpoint_every: int = 5
    provision_s: float = 0.05
    max_recoveries: int = 8

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.provision_s < 0:
            raise ValueError("provision_s must be >= 0")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")


@dataclass(frozen=True)
class RecoveryEvent:
    """One crash-and-recover episode, as the chaos report shows it."""

    epoch: int  # epoch that was executing when the crash was detected
    worker: int
    detected_at_s: float  # synchronised clock when the detector fired
    recovery_s: float  # provision + state re-transfer + replan
    refetch_bytes: int  # dependency state moved to the replacement
    rolled_back_to_epoch: int  # training resumes after this epoch
