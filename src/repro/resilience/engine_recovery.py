"""Engine-side crash recovery: re-provisioning a replacement worker.

Split out of ``engines/base.py`` by the unified-execution refactor; the
engine keeps :meth:`~repro.engines.base.BaseEngine.reprovision_bytes`
and :meth:`~repro.engines.base.BaseEngine.recover_from_crash` as thin
shims onto these functions, so the recovery policy
(:mod:`repro.training.resilient`) and the elastic layer are unchanged.
"""

from __future__ import annotations

from typing import Tuple

from repro.cluster.timeline import CPU, IDLE, NET_RECV
from repro.resilience.faults import WorkerCrashError, WorkerCrashFault


def reprovision_bytes(engine, worker: int) -> int:
    """Dependency state a replacement for ``worker`` must re-fetch.

    Every engine re-transfers the worker's own partition (features +
    parameters); on top of that comes the engine-specific dependency
    state: DepCache must re-materialise its cached L-hop closures
    (features of every cached vertex plus the replicated adjacency),
    while DepComm re-registers mirrors and fetches nothing -- the
    churn-side of the hybrid trade-off.
    """
    plan = engine.plan()
    feat_bytes = engine.graph.feature_dim * 4
    owned = engine.partitioning.part(worker)
    total = len(owned) * feat_bytes + engine.model.parameter_bytes()
    if plan is None:
        # Sampled engines compile a fresh plan per round and replicate
        # no dependency state; the partition + parameters are all a
        # replacement must re-fetch.
        return int(total)
    for l in range(engine.num_layers):
        total += len(plan.cached_deps[l][worker]) * feat_bytes
        block = plan.blocks[l][worker]
        total += block.num_edges * 12  # replicated adjacency (src,dst,w)
        # Historical-cache entries are re-materialised too (the
        # replacement starts cold and must fetch exact values).
        total += len(plan.stale_deps[l][worker]) * engine.dims[l] * 4
    return int(total)


def recover_from_crash(
    engine, crash, provision_s: float = 0.05
) -> Tuple[float, int]:
    """Charge a rollback-restart re-provision to the timeline.

    Models the replacement worker being provisioned, peers streaming
    the partition plus cached dependency state to it, and the
    preprocessing (probe + Algorithm 4) re-running; every surviving
    worker idles at the re-admission barrier meanwhile.  Returns
    ``(recovery_seconds, refetch_bytes)``; the caller is responsible
    for rolling model/optimizer state back to the last checkpoint.
    """
    fault = crash.fault if isinstance(crash, WorkerCrashError) else crash
    if not isinstance(fault, WorkerCrashFault):
        raise TypeError(f"expected a crash fault, got {fault!r}")
    if engine.faults is None:
        raise RuntimeError("engine has no fault schedule to recover from")
    worker = fault.worker
    t0 = engine.timeline.barrier()
    refetch = reprovision_bytes(engine, worker)
    network = engine.cluster.network
    if provision_s > 0:
        engine.timeline.advance(worker, IDLE, provision_s)
    engine.timeline.advance(
        worker, NET_RECV, network.wire_time(refetch), num_bytes=refetch
    )
    plan = engine.plan()
    if plan is not None and plan.preprocessing_s > 0:
        engine.timeline.advance(worker, CPU, plan.preprocessing_s)
    engine.faults.schedule.mark_recovered(fault)
    if engine._cache_active:
        # The replacement's historical cache restarts cold; refresh
        # cluster-wide next epoch so everyone is exact again.
        engine._hist_caches[worker].invalidate()
        engine._force_refresh = True
    t1 = engine.timeline.barrier()  # survivors idle until re-admission
    engine.timeline.record_span(
        worker, "recovery", t0, t1,
        crashed_worker=worker,
        refetch_bytes=refetch,
        strategy="restart",
    )
    return t1 - t0, refetch
