"""Resilience: fault injection, retry semantics, and crash recovery.

The paper evaluates NeutronStar on a healthy cluster; this subsystem
asks what the DepCache/DepComm trade-off looks like *off* the happy
path.  Declarative, seeded fault schedules (:mod:`.faults`) are applied
to device/network lookups by a per-run injector (:mod:`.injector`);
lost messages are retransmitted with timeout + exponential backoff
(:mod:`.retry`); crashed workers are recovered by checkpoint
rollback-restart under a :class:`RecoveryPolicy` (:mod:`.recovery`,
executed by :class:`repro.training.resilient.ResilientTrainer`); and
the chaos harness (:mod:`.chaos`) measures the damage per engine.

Two elastic extensions: when no replacement can be provisioned the
survivors absorb the dead worker's partition and training continues on
the smaller cluster (:mod:`.elastic`); and a health monitor re-estimates
the cost-model constants from observed timings and re-plans the
DepCache/DepComm split online when they drift (:mod:`.health`).
"""

from repro.resilience.faults import (
    FaultSchedule,
    LinkDegradationFault,
    MessageLossFault,
    RecoveryExhaustedError,
    StragglerFault,
    WorkerCrashError,
    WorkerCrashFault,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.injector import FaultInjector, TransferPlan
from repro.resilience.recovery import RecoveryEvent, RecoveryPolicy
from repro.resilience.chaos import ChaosReport, run_chaos
from repro.resilience.elastic import (
    MigrationReport,
    ShrinkRecord,
    rejoin_engine,
    shrink_engine,
)
from repro.resilience.health import ClusterHealthMonitor, run_replan_sweep

__all__ = [
    "FaultSchedule",
    "StragglerFault",
    "LinkDegradationFault",
    "MessageLossFault",
    "WorkerCrashFault",
    "WorkerCrashError",
    "RecoveryExhaustedError",
    "RetryPolicy",
    "FaultInjector",
    "TransferPlan",
    "RecoveryPolicy",
    "RecoveryEvent",
    "ChaosReport",
    "run_chaos",
    "MigrationReport",
    "ShrinkRecord",
    "shrink_engine",
    "rejoin_engine",
    "ClusterHealthMonitor",
    "run_replan_sweep",
]
