"""Elastic membership: survivors absorb a dead worker's partition.

PR 1's rollback-restart recovery assumes a replacement node can always
be provisioned.  When it cannot (spot reclamation, hardware loss --
``WorkerCrashFault.permanent``) or when provisioning would take longer
than the work is worth, the alternative is to *shrink*: the surviving
workers absorb the dead worker's vertices and training continues on the
(N-1)-worker cluster.

The shrink is deterministic end to end so recovered runs stay
reproducible:

1. :func:`repro.partition.absorb_partition` deals the dead worker's
   vertices to the least-loaded survivors (a pure function of the old
   partitioning and the dead worker id) and renumbers survivors.
2. :meth:`repro.cluster.ClusterSpec.without_worker` reshapes the
   cluster spec, remapping any fault schedule to the new numbering.
3. :meth:`repro.engines.base.BaseEngine.respawn` builds a fresh engine
   of the same class on the reshaped cluster, **sharing the model
   object** -- an optimizer bound to ``model.parameters()`` survives
   the swap, and since checkpoints restore into that same model, the
   post-shrink trajectory is bit-identical to training the reshaped
   cluster from the same checkpoint on healthy hardware.
4. Migration traffic (features + adjacency of moved vertices, plus the
   *new* plan's DepCache closure delta -- the churn side of the hybrid
   trade-off: DepCache pays more to shrink) is charged through
   :func:`repro.comm.scheduler.run_exchange` on the new timeline, which
   first advances to the old cluster's makespan so no modeled time is
   lost in the handover.
5. Dependency state rebuilds via the new engine's ``plan()`` (DepCache
   closures re-replicated, DepComm mirrors re-registered); historical
   caches start cold, so every migrated vertex's cached entry is
   implicitly invalidated and the next epoch is a refresh epoch.

:func:`rejoin_engine` is the inverse grow path: once a replacement for
the departed worker finally arrives, the moved vertices (and the
worker's closure state) stream back and training continues on the
original shape -- no rollback needed, the shared model is current.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import CPU
from repro.comm.scheduler import run_exchange
from repro.partition.base import Partitioning
from repro.partition.vertex_cut import ReassignmentPlan, absorb_partition
from repro.resilience.faults import (
    WorkerCrashError,
    WorkerCrashFault,
)

#: Bytes per replicated adjacency entry (src, dst, weight) -- matches
#: :meth:`repro.engines.base.BaseEngine.reprovision_bytes`.
ADJ_BYTES_PER_EDGE = 12


@dataclass(frozen=True)
class MigrationReport:
    """What one elastic transition (shrink or rejoin) cost.

    ``seconds`` is modeled wall time from the handover point through
    the migration exchange and re-planning barrier; ``migrated_bytes``
    the wire traffic (vertex state + closure delta); ``closure_bytes``
    the closure-delta share of it (zero for pure DepComm -- the churn
    asymmetry the paper's trade-off predicts).
    """

    direction: str  # "shrink" | "rejoin"
    seconds: float
    migrated_bytes: int
    closure_bytes: int
    preprocessing_s: float
    num_workers: int


@dataclass
class ShrinkRecord:
    """Everything needed to grow back to the pre-shrink cluster."""

    plan: ReassignmentPlan
    old_cluster: ClusterSpec
    old_partitioning: Partitioning
    crash: WorkerCrashFault  # in the old numbering


def _crash_fault(crash) -> WorkerCrashFault:
    fault = crash.fault if isinstance(crash, WorkerCrashError) else crash
    if not isinstance(fault, WorkerCrashFault):
        raise TypeError(f"expected a crash fault, got {fault!r}")
    return fault


def _vertex_state_volumes(
    graph, moved: np.ndarray, owners: np.ndarray, receivers: np.ndarray, m: int
) -> np.ndarray:
    """Byte matrix for streaming moved vertices' features + in-edges.

    ``owners[i]`` holds vertex ``moved[i]``'s durable state (for a
    shrink that is a deterministic storage shard; for a rejoin, the
    absorbing survivor); a vertex whose owner is its receiver loads
    locally and sends nothing.
    """
    volumes = np.zeros((m, m))
    if len(moved) == 0:
        return volumes
    in_deg = np.bincount(graph.dst, minlength=graph.num_vertices)[moved]
    per_vertex = graph.feature_dim * 4 + in_deg * ADJ_BYTES_PER_EDGE
    for s, r, b in zip(owners, receivers, per_vertex):
        if s != r:
            volumes[int(s), int(r)] += float(b)
    return volumes


def _closure_delta_volumes(
    new_engine, new_plan, old_cached, old_id_of
) -> Tuple[np.ndarray, int]:
    """Bytes each worker must fetch for newly cached closure vertices.

    Compares the reshaped plan's per-layer DepCache sets against the
    pre-shrink plan's (vertex ids are global, so the sets compare
    directly); every newly cached vertex streams its features from its
    new owner.  Pure DepComm has empty cached sets on both sides and
    pays nothing here.
    """
    m = new_engine.cluster.num_workers
    feat_bytes = new_engine.graph.feature_dim * 4
    assignment = new_engine.partitioning.assignment
    volumes = np.zeros((m, m))
    total = 0
    for l in range(new_engine.num_layers):
        for w in range(m):
            old_w = old_id_of(w)
            prior = (
                old_cached[l][old_w]
                if old_w is not None
                else np.empty(0, dtype=np.int64)
            )
            delta = np.setdiff1d(new_plan.cached_deps[l][w], prior)
            if len(delta) == 0:
                continue
            for owner in np.unique(assignment[delta]):
                count = int((assignment[delta] == owner).sum())
                if int(owner) == w:
                    continue  # now-local closure state loads from disk
                volumes[int(owner), w] += count * feat_bytes
                total += count * feat_bytes
    return volumes, total


def _charge_transition(
    new_engine, volumes: np.ndarray, handover_t: float,
    direction: str = "shrink",
) -> Tuple[float, float]:
    """Advance the new timeline to the handover and charge migration.

    Returns ``(transition_seconds, preprocessing_s)``; the whole
    transition is recorded as a ``migration`` span (tagged with
    ``direction``) so chrome traces show elastic reshapes explicitly.
    """
    timeline = new_engine.timeline
    for w in range(new_engine.cluster.num_workers):
        timeline.advance_at_least_until(w, handover_t)
    t0 = timeline.barrier()
    new_plan = new_engine.plan()  # None for per-round-compiled engines
    run_exchange(
        timeline,
        new_engine.cluster.network,
        volumes,
        options=new_engine.comm,
        barrier=True,
        bytes_per_message=new_engine.graph.feature_dim * 4,
        faults=new_engine.faults,
        retry=new_engine.retry,
    )
    prep_s = new_plan.preprocessing_s if new_plan is not None else 0.0
    if prep_s > 0:
        for w in range(new_engine.cluster.num_workers):
            timeline.advance(w, CPU, prep_s)
    t1 = timeline.barrier()
    m = new_engine.cluster.num_workers
    off_diag = ~np.eye(m, dtype=bool)
    timeline.record_span(
        0, "migration", t0, t1,
        direction=direction,
        migrated_bytes=int(volumes[off_diag].sum()),
        num_workers=m,
    )
    return t1 - t0, prep_s


def shrink_engine(engine, crash) -> Tuple[object, ShrinkRecord, MigrationReport]:
    """Absorb ``crash``'s worker into the survivors and hand over.

    Returns ``(new_engine, record, report)``: a fresh engine of the
    same class on the (N-1)-worker cluster with its timeline advanced
    past the migration, a :class:`ShrinkRecord` for a later
    :func:`rejoin_engine`, and the migration's cost accounting.  The
    caller (:class:`repro.training.resilient.ResilientTrainer`) is
    responsible for restoring model/optimizer state from the last
    checkpoint and re-aligning the epoch counter.
    """
    fault = _crash_fault(crash)
    old_plan = engine.plan()
    plan, reshaped = absorb_partition(engine.partitioning, fault.worker)
    new_cluster = engine.cluster.without_worker(fault.worker)
    new_engine = engine.respawn(new_cluster, reshaped)
    new_engine.rollback_to_epoch(engine._epoch)
    handover_t = engine.timeline.makespan

    new_m = new_cluster.num_workers
    new_plan = new_engine.plan()
    # Moved vertices stream from a deterministic durable-storage shard
    # (HDFS-style: shard of vertex v lives on worker v mod m).
    shard = plan.moved % new_m
    volumes = _vertex_state_volumes(
        engine.graph, plan.moved, shard, plan.targets, new_m
    )
    if new_plan is not None and old_plan is not None:
        closure_volumes, closure_bytes = _closure_delta_volumes(
            new_engine, new_plan, old_plan.cached_deps, plan.old_id
        )
        volumes = volumes + closure_volumes
    else:
        # Per-round-compiled engines replicate no closure state, so a
        # shrink moves only the vertices themselves.
        closure_bytes = 0
    seconds, prep_s = _charge_transition(
        new_engine, volumes, handover_t, direction="shrink"
    )
    off_diag = ~np.eye(new_m, dtype=bool)
    report = MigrationReport(
        direction="shrink",
        seconds=seconds,
        migrated_bytes=int(volumes[off_diag].sum()),
        closure_bytes=closure_bytes,
        preprocessing_s=prep_s,
        num_workers=new_m,
    )
    record = ShrinkRecord(
        plan=plan,
        old_cluster=engine.cluster,
        old_partitioning=engine.partitioning,
        crash=fault,
    )
    return new_engine, record, report


def _sync_recovered_crashes(record: ShrinkRecord, shrunk_schedule) -> None:
    """Carry recovered-crash bookkeeping back to the original schedule.

    The shrink itself resolved ``record.crash``; any crash recovered
    *while shrunk* has a value-equal twin in the shrunk numbering
    (frozen dataclasses hash by value), found by applying the same
    remap the shrink applied.
    """
    original = record.old_cluster.faults
    if original is None:
        return
    original.mark_recovered(record.crash)
    if shrunk_schedule is None:
        return
    worker_map = record.plan.worker_map
    for fault in original.crashes():
        if fault == record.crash or fault.worker not in worker_map:
            continue
        twin = replace(fault, worker=worker_map[fault.worker])
        if shrunk_schedule.recovered(twin):
            original.mark_recovered(fault)


def rejoin_engine(
    engine, record: ShrinkRecord, provision_s: float = 0.0
) -> Tuple[object, MigrationReport]:
    """Grow back to the pre-shrink cluster (the inverse path).

    ``engine`` is the shrunk engine currently training; the returned
    engine runs on ``record.old_cluster`` with the original
    partitioning.  The rejoining worker re-fetches its vertices from
    the survivors that absorbed them plus its closure state from the
    vertex owners; no rollback happens -- the shared model object is
    already current.  ``provision_s`` models the replacement's spin-up
    before the transfer starts.
    """
    _sync_recovered_crashes(
        record, engine.faults.schedule if engine.faults else None
    )
    new_engine = engine.respawn(record.old_cluster, record.old_partitioning)
    new_engine.rollback_to_epoch(engine._epoch)
    handover_t = engine.timeline.makespan + max(0.0, provision_s)

    m = record.old_cluster.num_workers
    plan = record.plan
    rejoined = plan.dead_worker
    new_plan = new_engine.plan()
    # Moved vertices come back from the survivors that absorbed them.
    holders = np.asarray(
        [plan.old_id(int(t)) for t in plan.targets], dtype=np.int64
    )
    receivers = np.full(len(plan.moved), rejoined, dtype=np.int64)
    volumes = _vertex_state_volumes(
        engine.graph, plan.moved, holders, receivers, m
    )
    # The rejoining worker rebuilds its closure state from scratch; the
    # survivors shed theirs for free (dropping cached state is local).
    closure_bytes = 0
    feat_bytes = new_engine.graph.feature_dim * 4
    assignment = record.old_partitioning.assignment
    for l in range(new_engine.num_layers if new_plan is not None else 0):
        cached = new_plan.cached_deps[l][rejoined]
        for owner in np.unique(assignment[cached]) if len(cached) else ():
            count = int((assignment[cached] == owner).sum())
            if int(owner) == rejoined:
                continue
            volumes[int(owner), rejoined] += count * feat_bytes
            closure_bytes += count * feat_bytes
    # Current parameters stream from a peer (the model kept training
    # while the worker was away).
    peer = 0 if rejoined != 0 else 1
    volumes[peer, rejoined] += new_engine.model.parameter_bytes()
    seconds, prep_s = _charge_transition(
        new_engine, volumes, handover_t, direction="rejoin"
    )
    seconds += max(0.0, provision_s)
    off_diag = ~np.eye(m, dtype=bool)
    report = MigrationReport(
        direction="rejoin",
        seconds=seconds,
        migrated_bytes=int(volumes[off_diag].sum()),
        closure_bytes=closure_bytes,
        preprocessing_s=prep_s,
        num_workers=m,
    )
    return new_engine, report


__all__ = [
    "ADJ_BYTES_PER_EDGE",
    "MigrationReport",
    "ShrinkRecord",
    "shrink_engine",
    "rejoin_engine",
]
