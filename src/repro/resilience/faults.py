"""Deterministic fault schedules for the cluster simulation.

Production clusters have stragglers, flaky links, lossy networks, and
crashing workers; the paper's evaluation assumes none of them.  A
:class:`FaultSchedule` is a seeded, declarative list of faults that the
engines and the exchange scheduler consult while charging modeled time,
so the DepCache/DepComm trade-off can be measured *off* the happy path:

- :class:`StragglerFault` -- one worker's GPU and/or host CPU runs
  slower over a time window.  The host CPU drives message packing and
  the (MPI-style) communication stack, so a CPU straggler also slows
  every link that touches the worker.
- :class:`LinkDegradationFault` -- a link (or all links of a worker)
  loses bandwidth and/or gains latency over a window.
- :class:`MessageLossFault` -- a fraction of sends on matching links is
  dropped; with retry semantics enabled each drop costs a timeout plus
  exponential backoff (see :mod:`repro.resilience.retry`).
- :class:`WorkerCrashFault` -- a worker dies at a simulated time; the
  crash is detected at the next layer barrier and surfaced as a
  :class:`WorkerCrashError` for the recovery policy to handle.

All faults are plain data; every random decision (message drops) is
derived from ``(seed, phase, src, dst, attempt)`` so a schedule replays
bit-identically.  An **empty schedule behaves exactly like no schedule
at all** -- the resilience layer is zero-cost when disabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

INFINITY = math.inf


def _window_ok(start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"fault start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(f"fault window must have end > start, got [{start}, {end})")


@dataclass(frozen=True)
class StragglerFault:
    """Worker ``worker`` is slow during ``[start, end)``.

    ``gpu_factor`` divides the device's dense/sparse FLOP rates;
    ``cpu_factor`` (defaults to ``gpu_factor``) divides the host CPU
    rate, message-packing throughput, and the effective bandwidth of
    links touching the worker -- the communication stack is CPU-driven,
    so a host-level straggler is slow at serving messages too.
    """

    worker: int
    start: float = 0.0
    end: float = INFINITY
    gpu_factor: float = 4.0
    cpu_factor: Optional[float] = None

    def __post_init__(self):
        _window_ok(self.start, self.end)
        if self.gpu_factor < 1.0:
            raise ValueError("gpu_factor must be >= 1 (a slowdown)")
        if self.cpu_factor is not None and self.cpu_factor < 1.0:
            raise ValueError("cpu_factor must be >= 1 (a slowdown)")

    @property
    def effective_cpu_factor(self) -> float:
        return self.gpu_factor if self.cpu_factor is None else self.cpu_factor

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class LinkDegradationFault:
    """Links matching ``(src, dst)`` degrade during ``[start, end)``.

    ``None`` for ``src`` or ``dst`` matches any endpoint, so
    ``LinkDegradationFault(src=3, dst=None)`` degrades every link out of
    worker 3.  ``bandwidth_factor`` divides ``bytes_per_s``;
    ``extra_latency_s`` adds to per-message latency.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    end: float = INFINITY
    bandwidth_factor: float = 4.0
    extra_latency_s: float = 0.0

    def __post_init__(self):
        _window_ok(self.start, self.end)
        if self.bandwidth_factor < 1.0:
            raise ValueError("bandwidth_factor must be >= 1 (a slowdown)")
        if self.extra_latency_s < 0:
            raise ValueError("extra_latency_s must be >= 0")

    def applies(self, src: int, dst: int, t: float) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and self.start <= t < self.end
        )


@dataclass(frozen=True)
class MessageLossFault:
    """A fraction of chunk sends on matching links is dropped."""

    drop_fraction: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    end: float = INFINITY

    def __post_init__(self):
        _window_ok(self.start, self.end)
        if not 0.0 <= self.drop_fraction <= 1.0:
            raise ValueError("drop_fraction must be in [0, 1]")

    def applies(self, src: int, dst: int, t: float) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and self.start <= t < self.end
        )


@dataclass(frozen=True)
class WorkerCrashFault:
    """Worker ``worker`` dies at simulated time ``at_time``.

    The crash is noticed at the first barrier whose synchronised time
    reaches ``at_time``; all surviving workers then block for
    ``detection_timeout_s`` (the failure detector's timeout) before the
    engine raises :class:`WorkerCrashError`.

    ``permanent`` marks a crash no replacement can be provisioned for
    (spot reclamation, hardware loss): the ``auto`` recovery strategy
    then shrinks the cluster (survivors absorb the partition, see
    :mod:`repro.resilience.elastic`) instead of waiting for a
    rollback-restart re-provision.
    """

    worker: int
    at_time: float
    detection_timeout_s: float = 0.05
    permanent: bool = False

    def __post_init__(self):
        if self.at_time < 0:
            raise ValueError("crash time must be >= 0")
        if self.detection_timeout_s < 0:
            raise ValueError("detection_timeout_s must be >= 0")


class WorkerCrashError(RuntimeError):
    """Raised by an engine when a barrier detects a crashed worker."""

    def __init__(self, fault: WorkerCrashFault, detected_at_s: float):
        super().__init__(
            f"worker {fault.worker} crashed at t={fault.at_time:.4f}s "
            f"(detected at t={detected_at_s:.4f}s)"
        )
        self.fault = fault
        self.detected_at_s = detected_at_s


class RecoveryExhaustedError(WorkerCrashError):
    """A crash landed after the recovery budget was already spent.

    Subclasses :class:`WorkerCrashError` so existing ``except`` clauses
    keep working, but carries the number of recoveries performed so
    callers (the ``repro chaos`` CLI, the ops harness) can distinguish
    "run aborted after exhausting ``max_recoveries``" from a first
    unhandled crash and exit non-zero with a structured failure.
    """

    def __init__(
        self, fault: WorkerCrashFault, detected_at_s: float, recoveries: int
    ):
        super().__init__(fault, detected_at_s)
        self.recoveries = recoveries
        self.args = (
            f"recovery budget exhausted after {recoveries} "
            f"recover{'y' if recoveries == 1 else 'ies'}: {self.args[0]}",
        )


@dataclass
class FaultSchedule:
    """A seeded collection of faults applied to one simulated run.

    The schedule carries mutable bookkeeping (which crashes have been
    recovered), so build a **fresh schedule per engine run** -- e.g. via
    a factory -- when comparing engines under identical churn.
    """

    faults: List = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        self.faults = list(self.faults)
        self._recovered: set = set()
        known = (
            StragglerFault,
            LinkDegradationFault,
            MessageLossFault,
            WorkerCrashFault,
        )
        for fault in self.faults:
            if not isinstance(fault, known):
                raise TypeError(f"unknown fault type: {fault!r}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def add(self, fault) -> "FaultSchedule":
        known = (
            StragglerFault,
            LinkDegradationFault,
            MessageLossFault,
            WorkerCrashFault,
        )
        if not isinstance(fault, known):
            raise TypeError(f"unknown fault type: {fault!r}")
        self.faults.append(fault)
        return self

    def _of(self, cls) -> Iterable:
        return (f for f in self.faults if isinstance(f, cls))

    # -- straggler queries ---------------------------------------------
    def gpu_factor(self, worker: int, t: float) -> float:
        """Combined GPU slowdown divisor for ``worker`` at time ``t``."""
        factor = 1.0
        for f in self._of(StragglerFault):
            if f.worker == worker and f.active(t):
                factor *= f.gpu_factor
        return factor

    def cpu_factor(self, worker: int, t: float) -> float:
        """Combined host-CPU slowdown divisor for ``worker`` at ``t``."""
        factor = 1.0
        for f in self._of(StragglerFault):
            if f.worker == worker and f.active(t):
                factor *= f.effective_cpu_factor
        return factor

    # -- link queries --------------------------------------------------
    def link_degradation(
        self, src: int, dst: int, t: float
    ) -> Tuple[float, float]:
        """``(bandwidth_divisor, extra_latency_s)`` for link ``src->dst``.

        Combines explicit link faults with the CPU slowdown of either
        endpoint (the slower endpoint bounds the transfer: the sender
        packs and pushes, the receiver drains).
        """
        divisor = 1.0
        extra_latency = 0.0
        for f in self._of(LinkDegradationFault):
            if f.applies(src, dst, t):
                divisor *= f.bandwidth_factor
                extra_latency += f.extra_latency_s
        endpoint = max(self.cpu_factor(src, t), self.cpu_factor(dst, t))
        return divisor * endpoint, extra_latency

    def loss_fraction(self, src: int, dst: int, t: float) -> float:
        """Probability a chunk sent ``src -> dst`` at ``t`` is dropped."""
        keep = 1.0
        for f in self._of(MessageLossFault):
            if f.applies(src, dst, t):
                keep *= 1.0 - f.drop_fraction
        return 1.0 - keep

    def lossy(self) -> bool:
        return any(True for _ in self._of(MessageLossFault))

    # -- crash queries -------------------------------------------------
    def crashes(self) -> List[WorkerCrashFault]:
        return list(self._of(WorkerCrashFault))

    def pending_crash(self, t: float) -> Optional[WorkerCrashFault]:
        """Earliest unrecovered crash with ``at_time <= t`` (or None)."""
        pending = [
            f
            for f in self._of(WorkerCrashFault)
            if f.at_time <= t and f not in self._recovered
        ]
        return min(pending, key=lambda f: f.at_time) if pending else None

    def mark_recovered(self, fault: WorkerCrashFault) -> None:
        """Record that ``fault``'s worker has been re-provisioned."""
        self._recovered.add(fault)

    def recovered(self, fault: WorkerCrashFault) -> bool:
        return fault in self._recovered

    # -- elastic membership --------------------------------------------
    def remap_workers(self, worker_map: Dict[int, int]) -> "FaultSchedule":
        """The schedule as a renumbered cluster sees it (elastic shrink).

        ``worker_map`` maps surviving old worker ids to their new ids;
        faults pinned to a dropped worker vanish (its straggler dies
        with it, its pending crash is moot), link faults keep wildcard
        (``None``) endpoints, and recovered-crash bookkeeping carries
        over for retained faults.  Fault windows are absolute simulated
        times and the reshaped engine's clock continues from the shrink
        point, so windows need no translation.
        """
        remapped: List = []
        recovered: List[WorkerCrashFault] = []
        for fault in self.faults:
            if isinstance(fault, (StragglerFault, WorkerCrashFault)):
                if fault.worker not in worker_map:
                    continue
                new = replace(fault, worker=worker_map[fault.worker])
                if isinstance(new, WorkerCrashFault) and self.recovered(fault):
                    recovered.append(new)
                remapped.append(new)
            else:  # link-scoped faults: both endpoints must survive
                if fault.src is not None and fault.src not in worker_map:
                    continue
                if fault.dst is not None and fault.dst not in worker_map:
                    continue
                remapped.append(replace(
                    fault,
                    src=None if fault.src is None else worker_map[fault.src],
                    dst=None if fault.dst is None else worker_map[fault.dst],
                ))
        schedule = FaultSchedule(remapped, seed=self.seed)
        for fault in recovered:
            schedule.mark_recovered(fault)
        return schedule
