"""Retry/timeout/backoff semantics for the exchange scheduler.

When a :class:`~repro.resilience.faults.MessageLossFault` drops a chunk
send, the sender notices after ``timeout_s`` (no ACK), backs off
exponentially, and re-sends.  The whole sequence -- wasted wire time for
the dropped copy, the timeout, the backoff, the retransmission -- is
charged to the timeline, so Fig-13-style utilization traces show the
stall instead of silently losing it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retransmission parameters.

    Attributes
    ----------
    timeout_s:
        How long the sender waits for an ACK before declaring a chunk
        lost.
    backoff_base_s:
        Sleep before the first retransmission; doubles (by
        ``backoff_factor``) on every further attempt.
    backoff_factor:
        Multiplier applied to the backoff per retry.
    max_retries:
        Retransmissions after the first attempt.  The final attempt is
        modeled as delivered (a reliable-fallback path), so a transfer
        never hangs forever; the pain is the accumulated waiting.
    jitter:
        Fraction of each backoff randomised away so simultaneous drops
        on many links do not retry in lockstep (the classic
        full-jitter-style decorrelation).  The effective backoff is
        ``backoff * (1 - jitter * u)`` with ``u`` drawn from the same
        seeded ``(seed, phase, src, dst, attempt)`` stream as the drop
        decisions, so jittered runs replay bit-identically.  The
        default ``0.0`` draws nothing at all, keeping pre-jitter traces
        bit-identical.
    """

    timeout_s: float = 5.0e-4
    backoff_base_s: float = 1.0e-4
    backoff_factor: float = 2.0
    max_retries: int = 5
    jitter: float = 0.0

    def __post_init__(self):
        if self.timeout_s < 0 or self.backoff_base_s < 0:
            raise ValueError("timeout and backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, attempt: int) -> float:
        """Backoff slept before retransmission number ``attempt + 1``."""
        return self.backoff_base_s * self.backoff_factor**attempt

    def jittered_backoff_s(self, attempt: int, u: float) -> float:
        """Backoff with the jitter fraction scaled by draw ``u`` in [0, 1)."""
        return self.backoff_s(attempt) * (1.0 - self.jitter * u)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1
