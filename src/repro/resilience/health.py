"""Cluster health monitoring and online re-planning.

Algorithm 4's DepCache/DepComm decisions are made once, from constants
(``T_v``, ``T_e``, ``T_c``) probed on a *healthy* cluster.  A sustained
straggler or a degraded link silently invalidates them: the probed
``T_c`` says communication is cheap while the real link crawls.  The
:class:`ClusterHealthMonitor` closes the loop:

1. After every epoch it diffs each worker's cumulative
   :class:`~repro.cluster.timeline.Timeline` totals -- compute is
   ``gpu + cpu`` seconds, communication is ``net_send + net_recv`` --
   and normalises by the cluster *median*, so a slow worker stands out
   relative to its peers without needing a healthy baseline run.
2. The per-worker ratios are smoothed with an EWMA into effective
   slowdown factors.
3. When a factor drifts past ``drift_threshold`` relative to the last
   re-plan, :meth:`worker_constants` scales the probed
   :class:`~repro.costmodel.probe.ProbeResult` per worker (compute
   factors scale ``T_v``/``T_e``, comm factors scale ``T_c``) and
   :meth:`repro.engines.base.BaseEngine.replan` re-runs the greedy --
   warm-started from the previous :class:`DependencyPartition`, so only
   the decision pass (not the measurement sweep) repeats.  Decisions
   then shift toward DepCache across degraded links and away from
   straggling workers mid-run.

Uniform per-worker scaling preserves each worker's ``t_r`` ordering,
which is exactly what makes the warm start's seeded heap order correct.

:func:`run_replan_sweep` is the comparison harness behind the
``repro replan-sweep`` CLI subcommand: the same faulty workload with
re-planning off and on.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import CPU, GPU, NET_RECV, NET_SEND, Timeline
from repro.comm.scheduler import CommOptions
from repro.costmodel.probe import ProbeResult
from repro.resilience.faults import FaultSchedule

#: Factors within this band of 1.0 are considered healthy and get no
#: constants override (avoids churning the plan on noise).
_OVERRIDE_EPSILON = 0.05


class ClusterHealthMonitor:
    """EWMA estimator of per-worker effective slowdown factors.

    Parameters
    ----------
    num_workers:
        Cluster size the monitored timeline was built for.
    alpha:
        EWMA smoothing weight for new observations (1.0 = no memory).
    drift_threshold:
        Relative factor change (vs. the last re-plan's factors) that
        :meth:`drifted` reports as re-plan-worthy.
    min_observations:
        Epochs observed before :meth:`drifted` may fire (damps the
        first noisy diffs after start or re-plan).
    """

    def __init__(
        self,
        num_workers: int,
        alpha: float = 0.4,
        drift_threshold: float = 0.3,
        min_observations: int = 2,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.num_workers = num_workers
        self.alpha = alpha
        self.drift_threshold = drift_threshold
        self.min_observations = min_observations
        self.compute_factors = np.ones(num_workers)
        self.comm_factors = np.ones(num_workers)
        self.observations = 0
        self._last_compute: Optional[np.ndarray] = None
        self._last_comm: Optional[np.ndarray] = None
        # Factors at the last re-plan; drift is measured against these.
        self._ref_compute = np.ones(num_workers)
        self._ref_comm = np.ones(num_workers)

    # ------------------------------------------------------------------
    def observe(self, timeline: Timeline) -> None:
        """Fold one epoch's timeline deltas into the factor estimates."""
        if timeline.num_workers != self.num_workers:
            raise ValueError(
                f"timeline has {timeline.num_workers} workers, monitor "
                f"expects {self.num_workers}"
            )
        compute = (timeline.totals[GPU] + timeline.totals[CPU]).copy()
        comm = (timeline.totals[NET_SEND] + timeline.totals[NET_RECV]).copy()
        if self._last_compute is not None:
            d_compute = compute - self._last_compute
            d_comm = comm - self._last_comm
            self._fold(self.compute_factors, d_compute)
            self._fold(self.comm_factors, d_comm)
            self.observations += 1
        self._last_compute = compute
        self._last_comm = comm

    def _fold(self, factors: np.ndarray, deltas: np.ndarray) -> None:
        median = float(np.median(deltas))
        if median <= 0:
            return  # nothing of this kind happened this epoch
        observed = np.maximum(deltas / median, 1e-6)
        factors *= (observed / factors) ** self.alpha

    # ------------------------------------------------------------------
    def drifted(self) -> bool:
        """Whether factors moved enough (vs. last re-plan) to re-plan."""
        if self.observations < self.min_observations:
            return False
        drift = max(
            float(np.abs(self.compute_factors / self._ref_compute - 1.0).max()),
            float(np.abs(self.comm_factors / self._ref_comm - 1.0).max()),
        )
        return drift > self.drift_threshold

    def mark_replanned(self) -> None:
        """Re-anchor drift detection after a re-plan was applied."""
        self._ref_compute = self.compute_factors.copy()
        self._ref_comm = self.comm_factors.copy()
        self.observations = 0

    # ------------------------------------------------------------------
    def worker_constants(self, base: ProbeResult) -> Dict[int, ProbeResult]:
        """Per-worker effective constants for the re-plan.

        Workers within ``_OVERRIDE_EPSILON`` of healthy get no entry
        (they keep planning with the shared probe); the rest get
        ``base`` with compute costs scaled by their compute factor and
        communication costs by their comm factor.
        """
        overrides: Dict[int, ProbeResult] = {}
        for w in range(self.num_workers):
            fc = float(self.compute_factors[w])
            fx = float(self.comm_factors[w])
            if (
                abs(fc - 1.0) <= _OVERRIDE_EPSILON
                and abs(fx - 1.0) <= _OVERRIDE_EPSILON
            ):
                continue
            overrides[w] = replace(
                base,
                t_v=base.t_v * fc,
                t_e=base.t_e * fc,
                t_c=base.t_c * fx,
                t_v_layer=[t * fc for t in base.t_v_layer],
                t_e_layer=[t * fc for t in base.t_e_layer],
                t_c_layer=[t * fx for t in base.t_c_layer],
            )
        return overrides

    def maybe_replan(self, engine, check: bool = True) -> bool:
        """Re-plan ``engine`` if drift warrants it; returns whether it did."""
        if not check or not self.drifted():
            return False
        engine.plan()  # ensures constants are probed
        engine.replan(self.worker_constants(engine.constants))
        self.mark_replanned()
        return True


def run_replan_sweep(
    engine_name: str,
    graph,
    model_factory: Callable[[], object],
    cluster: ClusterSpec,
    schedule_factory: Callable[[], FaultSchedule],
    epochs: int = 10,
    comm: CommOptions = CommOptions.all(),
    check_every: int = 1,
    alpha: float = 0.4,
    drift_threshold: float = 0.3,
    **engine_kwargs,
) -> Dict[str, float]:
    """Static vs. adaptive planning under the same fault schedule.

    Runs ``epochs`` timing-mode epochs twice: once with the plan frozen
    at its healthy-probe decisions, once with a
    :class:`ClusterHealthMonitor` watching the timeline and re-planning
    on drift.  ``schedule_factory`` must return a fresh schedule per
    call (stragglers / link degradations; crashes belong to the chaos
    harness).  Returns a flat dict ready for table or JSON output.
    """
    from repro.engines import make_engine

    if epochs < 1:
        raise ValueError("epochs must be positive")
    if check_every < 1:
        raise ValueError("check_every must be >= 1")

    def build():
        return make_engine(
            engine_name,
            graph,
            model_factory(),
            cluster.with_faults(schedule_factory()),
            comm=comm,
            **engine_kwargs,
        )

    static = build()
    for _ in range(epochs):
        static.charge_epoch()
    static_makespan = static.timeline.makespan
    static_ratio = static.plan().cache_ratio()

    adaptive = build()
    monitor = ClusterHealthMonitor(
        cluster.num_workers, alpha=alpha, drift_threshold=drift_threshold
    )
    replans = 0
    for e in range(epochs):
        adaptive.charge_epoch()
        monitor.observe(adaptive.timeline)
        if monitor.maybe_replan(adaptive, check=(e + 1) % check_every == 0):
            replans += 1
    adaptive_makespan = adaptive.timeline.makespan
    adaptive_ratio = adaptive.plan().cache_ratio()

    return {
        "engine": engine_name,
        "epochs": epochs,
        "static_makespan_s": float(static_makespan),
        "adaptive_makespan_s": float(adaptive_makespan),
        "speedup": (
            float(static_makespan / adaptive_makespan)
            if adaptive_makespan > 0
            else float("nan")
        ),
        "replans": replans,
        "static_cache_ratio": float(static_ratio),
        "adaptive_cache_ratio": float(adaptive_ratio),
    }


__all__ = ["ClusterHealthMonitor", "run_replan_sweep"]
