"""Applies a fault schedule to device/network lookups at charge time.

The :class:`FaultInjector` is the stateful, per-run companion of a
declarative :class:`~repro.resilience.faults.FaultSchedule`: engines ask
it for a (possibly degraded) view of the device a worker computes on and
for the effective cost of each chunk transfer, and it keeps the
monotonically increasing *phase counter* that makes message-loss draws
deterministic -- drop decisions hash ``(seed, phase, src, dst,
attempt)``, so the same schedule replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.cluster.device import DeviceProfile
from repro.cluster.network import NetworkProfile
from repro.resilience.faults import FaultSchedule
from repro.resilience.retry import RetryPolicy
from repro.utils.rng import derive_uniform

# Attempt-index salt separating backoff-jitter draws from drop draws in
# the shared (seed, phase, src, dst, attempt) stream; far above any real
# attempt count, so the two never collide.
_JITTER_ATTEMPT_SALT = 1 << 20


@dataclass(frozen=True)
class TransferPlan:
    """Modeled outcome of sending one chunk over a faulty link.

    ``wire_s`` is the per-attempt wire time (degraded link), ``attempts``
    how many copies actually hit the wire, ``wait_s`` the accumulated
    timeout + backoff the sender spent between attempts.  The sender
    occupies its NIC for ``wire_s * attempts`` and idles for ``wait_s``;
    the receiver sees one delivered copy (``wire_s``).
    """

    wire_s: float
    attempts: int
    wait_s: float

    @property
    def send_s(self) -> float:
        return self.wire_s * self.attempts

    @property
    def retries(self) -> int:
        return self.attempts - 1


class FaultInjector:
    """One engine run's view of a fault schedule.

    Also accumulates retry statistics (``total_retries``,
    ``total_dropped``, ``total_retry_s``) that the chaos harness reports.
    """

    def __init__(self, schedule: FaultSchedule):
        if schedule is None:
            raise ValueError("FaultInjector needs a FaultSchedule")
        self.schedule = schedule
        self._phase = 0
        self._device_cache: Dict[Tuple[int, float, float], DeviceProfile] = {}
        self.total_retries = 0
        self.total_dropped = 0
        self.total_retry_s = 0.0

    # ------------------------------------------------------------------
    def next_phase(self) -> int:
        """Advance and return the exchange-phase counter."""
        self._phase += 1
        return self._phase

    def draw(self, phase: int, src: int, dst: int, attempt: int) -> float:
        """Deterministic uniform in [0, 1) for one send attempt.

        Routed through :func:`repro.utils.rng.derive_uniform`, whose
        all-integer path is bit-identical to the historical
        ``default_rng([seed & 0x7FFFFFFF, phase, src, dst, attempt])``
        formula, so pre-helper chaos traces replay unchanged.
        """
        return derive_uniform(self.schedule.seed, phase, src, dst, attempt)

    # ------------------------------------------------------------------
    # Device view (straggler compute slowdown)
    # ------------------------------------------------------------------
    def device_view(
        self, device: DeviceProfile, worker: int, t: float
    ) -> DeviceProfile:
        """``device`` as ``worker`` experiences it at time ``t``."""
        gpu = self.schedule.gpu_factor(worker, t)
        cpu = self.schedule.cpu_factor(worker, t)
        if gpu == 1.0 and cpu == 1.0:
            return device
        key = (id(device), gpu, cpu)
        cached = self._device_cache.get(key)
        if cached is None:
            cached = replace(
                device,
                flops_per_s=device.flops_per_s / gpu,
                sparse_flops_per_s=device.sparse_flops_per_s / gpu,
                cpu_flops_per_s=device.cpu_flops_per_s / cpu,
            )
            self._device_cache[key] = cached
        return cached

    def cpu_factor(self, worker: int, t: float) -> float:
        return self.schedule.cpu_factor(worker, t)

    # ------------------------------------------------------------------
    # Link view (degradation, loss, retries)
    # ------------------------------------------------------------------
    def wire_time(
        self,
        network: NetworkProfile,
        src: int,
        dst: int,
        num_bytes: float,
        t: float,
        congested: bool = False,
    ) -> float:
        """Per-attempt wire seconds on the (possibly degraded) link."""
        if num_bytes <= 0:
            return 0.0
        divisor, extra_latency = self.schedule.link_degradation(src, dst, t)
        time = (
            network.latency_s
            + extra_latency
            + num_bytes / (network.bytes_per_s / divisor)
        )
        if congested:
            time *= network.congestion_factor
        return time

    def plan_transfer(
        self,
        network: NetworkProfile,
        src: int,
        dst: int,
        num_bytes: float,
        t: float,
        congested: bool,
        retry: RetryPolicy,
        phase: int,
    ) -> TransferPlan:
        """Wire/wait accounting for one chunk send, retries included."""
        wire = self.wire_time(network, src, dst, num_bytes, t, congested)
        p = self.schedule.loss_fraction(src, dst, t)
        attempts = 1
        wait = 0.0
        if p > 0.0 and retry is not None:
            for k in range(retry.max_attempts - 1):
                if self.draw(phase, src, dst, k) >= p:
                    break  # delivered on attempt k
                if retry.jitter > 0.0:
                    # Salted attempt index keeps the jitter draws out of
                    # the drop-decision stream; jitter == 0 draws
                    # nothing, leaving old traces bit-identical.
                    u = self.draw(phase, src, dst, _JITTER_ATTEMPT_SALT + k)
                    backoff = retry.jittered_backoff_s(k, u)
                else:
                    backoff = retry.backoff_s(k)
                wait += retry.timeout_s + backoff
                attempts += 1
        plan = TransferPlan(wire_s=wire, attempts=attempts, wait_s=wait)
        if plan.retries:
            self.total_retries += plan.retries
            self.total_dropped += plan.retries
            self.total_retry_s += plan.wait_s + plan.wire_s * plan.retries
        return plan
