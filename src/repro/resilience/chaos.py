"""The chaos harness: run an engine under a fault schedule, report damage.

:func:`run_chaos` runs the same workload twice -- once on the healthy
cluster, once with the fault schedule injected -- and reports the
degradation ratio, retry traffic, idle (stall) time, and any
checkpoint-rollback recoveries.  Two modes:

- ``timing`` (default): per-epoch cost via ``charge_epoch`` -- fast,
  no numerics; crashes still trigger the recovery path, with the lost
  epochs since the last checkpoint replayed.
- ``train``: full :class:`~repro.training.resilient.ResilientTrainer`
  run with real loss numerics; crashes roll model + optimizer back to
  the last checkpoint.

The recovery *strategy* comes from the policy (or the ``recovery``
shorthand): ``restart`` provisions a replacement and replays,
``shrink`` absorbs the dead partition into the survivors
(:mod:`repro.resilience.elastic`), ``auto`` picks per crash.

The harness backs the ``repro chaos`` CLI subcommand and
``benchmarks/bench_chaos_resilience.py`` / ``bench_elastic.py``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import IDLE
from repro.comm.scheduler import CommOptions
from repro.resilience.elastic import ShrinkRecord, rejoin_engine, shrink_engine
from repro.resilience.faults import (
    FaultSchedule,
    RecoveryExhaustedError,
    WorkerCrashError,
)
from repro.resilience.recovery import RecoveryEvent, RecoveryPolicy
from repro.resilience.retry import RetryPolicy

MODES = ("timing", "train")


@dataclass
class ChaosReport:
    """What one chaos run did to one engine."""

    engine: str
    mode: str
    epochs: int
    clean_epoch_s: float
    makespan_s: float
    retries: int
    retry_wait_s: float
    idle_s: float
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    final_loss: float = float("nan")
    strategy: str = "restart"
    num_workers_final: int = 0

    @property
    def faulty_epoch_s(self) -> float:
        """Average modeled seconds per *useful* epoch, overheads included."""
        return self.makespan_s / self.epochs if self.epochs else 0.0

    @property
    def degradation(self) -> float:
        """How many times slower the faulty run is per epoch (>= ~1)."""
        if self.clean_epoch_s <= 0:
            return float("nan")
        return self.faulty_epoch_s / self.clean_epoch_s

    @property
    def total_recovery_s(self) -> float:
        return sum(e.recovery_s for e in self.recoveries)

    @property
    def idle_fraction(self) -> float:
        """Share of total worker-seconds spent stalled (waiting)."""
        denom = self.makespan_s
        if denom <= 0:
            return 0.0
        return self.idle_s / denom

    def to_dict(self) -> dict:
        """JSON-ready view (recovery events become plain dicts)."""
        payload = asdict(self)
        payload["faulty_epoch_s"] = self.faulty_epoch_s
        payload["degradation"] = self.degradation
        payload["total_recovery_s"] = self.total_recovery_s
        payload["idle_fraction"] = self.idle_fraction
        return payload


def _drain_stats(engine, acc: dict) -> None:
    """Fold a retiring engine's retry/idle stats into the accumulator."""
    injector = engine.faults
    if injector is not None:
        acc["retries"] += injector.total_retries
        acc["retry_wait_s"] += injector.total_retry_s
    acc["idle_s"] += float(engine.timeline.totals[IDLE].mean())


def run_chaos(
    engine_name: str,
    graph,
    model_factory: Callable[[], object],
    cluster: ClusterSpec,
    schedule: FaultSchedule,
    epochs: int = 5,
    comm: CommOptions = CommOptions.all(),
    retry: Optional[RetryPolicy] = None,
    policy: Optional[RecoveryPolicy] = None,
    mode: str = "timing",
    optimizer: str = "adam",
    lr: float = 0.01,
    recovery: Optional[str] = None,
    **engine_kwargs,
) -> ChaosReport:
    """Run ``epochs`` epochs of ``engine_name`` under ``schedule``.

    ``model_factory`` must return a *fresh* model per call (the clean
    baseline and the faulty run each get one, so the comparison starts
    from identical weights).  The ``schedule`` is consumed by the faulty
    run -- its crash bookkeeping mutates -- so pass a fresh one per call.
    ``recovery`` is shorthand for overriding the policy's strategy
    (``restart`` | ``shrink`` | ``auto``).
    """
    # Engines sit *above* resilience in the layering; import lazily.
    from repro.engines import make_engine

    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if epochs < 1:
        raise ValueError("epochs must be positive")
    policy = policy or RecoveryPolicy()
    if recovery is not None:
        policy = policy.with_strategy(recovery)

    clean_engine = make_engine(
        engine_name, graph, model_factory(), cluster.healthy(),
        comm=comm, **engine_kwargs,
    )
    clean_epoch_s = clean_engine.charge_epoch()

    faulty_cluster = cluster.with_faults(schedule)
    engine = make_engine(
        engine_name, graph, model_factory(), faulty_cluster,
        comm=comm, retry=retry, **engine_kwargs,
    )

    recoveries: List[RecoveryEvent] = []
    final_loss = float("nan")
    acc = {"retries": 0, "retry_wait_s": 0.0, "idle_s": 0.0}
    if mode == "timing":
        completed = 0
        last_checkpoint = 0
        crash_count = 0
        shrink_records: List[ShrinkRecord] = []
        epochs_since_shrink = 0
        while completed < epochs:
            try:
                engine.charge_epoch()
            except WorkerCrashError as crash:
                if crash_count >= policy.max_recoveries:
                    raise RecoveryExhaustedError(
                        crash.fault, crash.detected_at_s, crash_count
                    ) from crash
                crash_count += 1
                fault = crash.fault
                if (
                    policy.should_shrink(fault.permanent)
                    and engine.cluster.num_workers >= 2
                ):
                    _drain_stats(engine, acc)
                    engine, record, report = shrink_engine(engine, crash)
                    shrink_records.append(record)
                    epochs_since_shrink = 0
                    recovery_s = report.seconds
                    refetch = report.migrated_bytes + report.closure_bytes
                    strategy = "shrink"
                else:
                    recovery_s, refetch = engine.recover_from_crash(
                        crash, provision_s=policy.provision_s
                    )
                    strategy = "restart"
                recoveries.append(
                    RecoveryEvent(
                        epoch=completed + 1,
                        worker=fault.worker,
                        detected_at_s=crash.detected_at_s,
                        recovery_s=recovery_s,
                        refetch_bytes=refetch,
                        rolled_back_to_epoch=last_checkpoint,
                        strategy=strategy,
                        num_workers_after=engine.cluster.num_workers,
                    )
                )
                engine.rollback_to_epoch(last_checkpoint)
                completed = last_checkpoint
                continue
            completed += 1
            if shrink_records and policy.rejoin_after_epochs is not None:
                epochs_since_shrink += 1
                if epochs_since_shrink >= policy.rejoin_after_epochs:
                    record = shrink_records.pop()
                    epochs_since_shrink = 0
                    _drain_stats(engine, acc)
                    engine, report = rejoin_engine(
                        engine, record, provision_s=policy.provision_s
                    )
                    recoveries.append(
                        RecoveryEvent(
                            epoch=completed,
                            worker=record.crash.worker,
                            detected_at_s=engine.timeline.makespan,
                            recovery_s=report.seconds,
                            refetch_bytes=report.migrated_bytes,
                            rolled_back_to_epoch=completed,
                            strategy="rejoin",
                            num_workers_after=engine.cluster.num_workers,
                        )
                    )
            if completed % policy.checkpoint_every == 0:
                last_checkpoint = completed
    else:
        from repro.training.resilient import ResilientTrainer

        trainer = ResilientTrainer(
            engine, policy=policy, optimizer=optimizer, lr=lr
        )
        history = trainer.train(epochs)
        recoveries = trainer.recoveries
        final_loss = history.final_loss
        engine = trainer.engine  # may have been reshaped by shrink/rejoin

    _drain_stats(engine, acc)
    timeline = engine.timeline
    return ChaosReport(
        engine=engine_name,
        mode=mode,
        epochs=epochs,
        clean_epoch_s=clean_epoch_s,
        makespan_s=timeline.makespan,
        retries=acc["retries"],
        retry_wait_s=acc["retry_wait_s"],
        idle_s=acc["idle_s"],
        recoveries=recoveries,
        final_loss=final_loss,
        strategy=policy.strategy,
        num_workers_final=engine.cluster.num_workers,
    )
