"""Table 4: comparison with shared-memory systems.

GCN per-epoch time on four medium graphs that fit a single machine:
DGL-CPU, PyG-CPU, NeutronStar-CPU (single node, CPU backend), and the
distributed NeutronStar on 16 GPUs.

Paper shapes: PyG-CPU OOMs on the three large graphs (it stores the
graph as a dense matrix); DGL-CPU and NTS-CPU run everywhere;
NeutronStar on 16 GPUs is fastest.
"""

from common import build_engine, epoch_time, fmt_time, is_oom, paper_row, print_table
from repro.cluster.memory import OutOfMemoryError
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

DATASETS = ["pubmed", "google", "pokec", "livejournal"]


def measure_shared(variant: str, name: str) -> float:
    try:
        engine = build_engine(variant, name, cluster=ClusterSpec.cpu())
        return engine.charge_epoch()
    except OutOfMemoryError:
        return float("nan")


def run_experiment():
    results = {}
    for name in DATASETS:
        results[name] = {
            "DGL-CPU": measure_shared("dgl", name),
            "PyG-CPU": measure_shared("pyg", name),
            "NTS-CPU": measure_shared("nts", name),
            "NTS (16 GPUs)": epoch_time(
                "hybrid", name, cluster=ClusterSpec.ecs(16),
                comm=CommOptions.all(),
            ),
        }
    systems = ["DGL-CPU", "PyG-CPU", "NTS-CPU", "NTS (16 GPUs)"]
    rows = [
        [label] + [fmt_time(results[n][label]) for n in DATASETS]
        for label in systems
    ]
    print_table(
        "Table 4: shared-memory systems, GCN per-epoch time (ms)",
        ["system"] + [n.capitalize() for n in DATASETS],
        rows,
    )
    paper_row(
        "PyG-CPU OOMs on the three large graphs (dense-matrix storage); "
        "NTS on 16 GPUs fastest everywhere"
    )
    return results


def test_table4_shared_memory(benchmark):
    results = run_experiment()
    # PyG-CPU OOMs on exactly the three large graphs.
    for name in ["google", "pokec", "livejournal"]:
        assert is_oom(results[name]["PyG-CPU"]), name
    assert not is_oom(results["pubmed"]["PyG-CPU"])
    # DGL-CPU and NTS-CPU run everywhere.
    for name in DATASETS:
        assert not is_oom(results[name]["DGL-CPU"]), name
        assert not is_oom(results[name]["NTS-CPU"]), name
        # The 16-GPU cluster beats every CPU system.
        distributed = results[name]["NTS (16 GPUs)"]
        for label in ["DGL-CPU", "PyG-CPU", "NTS-CPU"]:
            if not is_oom(results[name][label]):
                assert distributed < results[name][label], (name, label)
    benchmark(lambda: measure_shared("dgl", "pubmed"))


if __name__ == "__main__":
    run_experiment()
