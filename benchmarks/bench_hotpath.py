"""Hot-path wall-clock trajectory: vectorized sparse path vs the seed.

Unlike the ``bench_fig*`` modules (which report *modeled* cluster
seconds), this one measures **real host wall-clock** of the two hot
loops the vectorization PR rewrote:

- ``epoch_s``: one sampled-training ``charge_epoch`` -- sampling,
  closure reuse, block building, compile, and accounting for every
  mini-batch round (the data-management epoch);
- ``compile_s``: one full-graph hybrid plan compile -- k-hop closures,
  block building, and program construction.

The before/after comparison is built in: ``reference_mode()``
reinstalls the pre-vectorization implementations (per-vertex slice
loops, ``searchsorted`` lookups, ``np.unique`` unions,
full-candidate sampler ranking, ``intersect1d``/``setdiff1d`` set
algebra), kept verbatim from the seed revision, and every measurement
runs once per mode on the same graph and seeds.  The headline assert:
the vectorized epoch is at least ``--min-speedup`` (default 5x) faster
than the reference on the largest generator in the ladder.

Run ``python benchmarks/bench_hotpath.py --json BENCH_hotpath.json``
for the full ladder up to ``social-large``, or ``--smoke`` for the CI
configuration (small graphs, 2x floor).
"""

import argparse
import contextlib
import gc
import time

import numpy as np

from common import wallclock, write_json
from repro.cluster.spec import ClusterSpec
from repro.core import blocks as B
from repro.costmodel import costs as CO
from repro.core.model import GNNModel
from repro.engines import HybridEngine
from repro.graph.adjacency import Adjacency
from repro.graph.datasets import load_dataset
from repro.sampling import closure as CL
from repro.sampling import compile as C
from repro.sampling import samplers as S
from repro.sampling.engine import SampledTrainingEngine
from repro.training.prep import prepare_graph
from repro.utils.rng import hashed_uniforms

DATASETS = ["cora", "reddit", "social-flat", "social-skewed", "social-large"]
SMOKE_DATASETS = ["cora", "social-flat"]


# ---------------------------------------------------------------------------
# Pre-vectorization reference implementations, verbatim from the seed
# revision.  ``reference_mode()`` swaps them in so "before" numbers are
# measured by this same script on the same graphs and seeds.
# ---------------------------------------------------------------------------

def _select_ref(self, vertices):
    vertices = np.asarray(vertices, dtype=np.int64)
    if len(vertices) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    spans = [(self.indptr[v], self.indptr[v + 1]) for v in vertices]
    return (
        np.concatenate([self.key[lo:hi] for lo, hi in spans]),
        np.concatenate([self.other[lo:hi] for lo, hi in spans]),
        np.concatenate([self.edge_ids[lo:hi] for lo, hi in spans]),
    )


class _LookupRef:
    def __init__(self, sorted_ids):
        self.sorted_ids = sorted_ids

    def __getitem__(self, ids):
        pos = np.searchsorted(self.sorted_ids, ids)
        if len(ids) and (
            pos.max(initial=0) >= len(self.sorted_ids)
            or not np.array_equal(self.sorted_ids[pos], ids)
        ):
            raise KeyError("id not present in block space")
        return pos.astype(np.int64)


def _position_lookup_ref(sorted_ids):
    return _LookupRef(sorted_ids)


def _mask_union_ref(num_vertices, *pieces):
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(pieces))


def _space_ref(num_vertices, *pieces):
    ids = _mask_union_ref(num_vertices, *pieces)
    mask = np.zeros(num_vertices, dtype=bool)
    mask[ids] = True
    return ids, mask, _LookupRef(ids)


def _sample_layer_ref(self, graph, frontier, fanout, layer, *,
                      epoch, batch, num_seeds, legacy_rng=None):
    if legacy_rng is not None:
        return self._sample_layer_legacy(graph, frontier, fanout, legacy_rng)
    dst, src, eids = self._candidates(graph, frontier)
    if len(dst) == 0:
        return S._EMPTY_LAYER
    # Ranks EVERY candidate edge, not just the over-fanout groups.
    r = hashed_uniforms(self.seed, "uniform", epoch, batch, layer, ids=eids)
    keep = S._rank_within_group(dst, r) < fanout
    return src[keep], dst[keep], eids[keep], None


def _bottom_fetch_ref(engine, closure):
    w = closure.worker
    inputs = closure.blocks[0].input_vertices
    remote = inputs[engine.assignment[inputs] != w]
    covered = (
        np.intersect1d(remote, closure.reused_srcs)
        if len(closure.reused_srcs)
        else C._EMPTY
    )
    rest = np.setdiff1d(remote, covered)
    if engine.feature_cache is not None:
        pinned = np.intersect1d(rest, engine.feature_cache.pinned_for(w))
        fetch = np.setdiff1d(rest, pinned)
    else:
        pinned = C._EMPTY
        fetch = rest
    counts = {"remote": len(remote), "reused": len(covered),
              "pinned": len(pinned), "fetch": len(fetch)}
    return fetch, counts


def _worker_spec_ref(engine, block, l, w, fetch, exchange):
    m = engine.cluster.num_workers
    w_layer = engine.model.layer(l)
    chunk_edges = np.zeros(m, dtype=np.int64)
    chunk_vertices = np.zeros(m, dtype=np.int64)
    local_edges = 0
    sparse_flops = 0.0
    if block.num_edges:
        sparse_flops = float(w_layer.sparse_flops(block))
        if l == 1 and len(fetch):
            received = np.isin(block.edge_src_global, fetch)
            owners = engine.assignment[block.edge_src_global]
            for j in range(m):
                sel = received & (owners == j)
                chunk_edges[j] = int(sel.sum())
                chunk_vertices[j] = len(exchange.recv_ids.get((j, w), ()))
            local_edges = int((~received).sum())
        else:
            local_edges = block.num_edges
    return C.ComputeSpec(
        sparse_flops=sparse_flops,
        dense_flops=float(w_layer.dense_flops(block)),
        num_edges=block.num_edges,
        d_in=engine.dims[l - 1],
        chunk_edges=chunk_edges,
        chunk_vertices=chunk_vertices,
        local_edges=local_edges,
    )


def _replace_ref(self, src, dst, eids, scales):
    order = np.argsort(dst, kind="stable")
    dst_sorted = dst[order]
    self.vertex_ids, counts = np.unique(dst_sorted, return_counts=True)
    self.indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    self.srcs = src[order]
    self.eids = eids[order]
    self.scales = None if scales is None else scales[order]


def _t_r_ref(self, u, layer):
    graph = self.graph
    csc = graph.csc
    cost = 0.0
    new_edge_count = 0
    memory = 0
    new_vertices = []
    frontier = np.asarray([u], dtype=np.int64)
    for k in range(layer - 1, 0, -1):
        rep = self.replicated[k]
        fresh = frontier[~self.owned_mask[frontier] & ~rep[frontier]]
        new_vertices.append(fresh)
        if len(fresh):
            _, sources, eids = csc.select(fresh)
            edge_count = len(eids)
            cost += self.mu * (
                len(fresh) * self.constants.vertex_cost(k)
                + edge_count * self.constants.edge_cost(k)
            )
            new_edge_count += edge_count
            memory += len(fresh) * self.dims[k] * 4 + edge_count * 12
            frontier = np.unique(sources)
        else:
            frontier = np.empty(0, dtype=np.int64)
        if len(frontier) == 0:
            break
    rep0 = self.replicated[0]
    fresh0 = (
        frontier[~self.owned_mask[frontier] & ~rep0[frontier]]
        if len(frontier)
        else frontier
    )
    new_vertices.append(fresh0)
    memory += len(fresh0) * self.dims[0] * 4
    return CO.SubtreeMeasurement(
        cost_s=cost,
        new_vertices=new_vertices,
        new_edge_count=new_edge_count,
        memory_bytes=memory,
    )


_PATCHES = [
    (Adjacency, "select", _select_ref),
    (B, "_position_lookup", _position_lookup_ref),
    (B, "_mask_union", _mask_union_ref),
    (B, "_space", _space_ref),
    (S.UniformFanoutSampler, "_sample_layer", _sample_layer_ref),
    (C, "_bottom_fetch", _bottom_fetch_ref),
    (C, "_worker_spec", _worker_spec_ref),
    (CL.ReuseState, "replace", _replace_ref),
    (CO.DependencyCostModel, "t_r", _t_r_ref),
]


@contextlib.contextmanager
def reference_mode():
    """Swap in the seed-revision hot-path implementations."""
    saved = [(obj, name, getattr(obj, name)) for obj, name, _ in _PATCHES]
    for obj, name, ref in _PATCHES:
        setattr(obj, name, ref)
    try:
        yield
    finally:
        for obj, name, orig in saved:
            setattr(obj, name, orig)


# ---------------------------------------------------------------------------
# Measurements.
# ---------------------------------------------------------------------------

def _graph(dataset):
    return prepare_graph(load_dataset(dataset), "gcn")


def _model(graph):
    return GNNModel.gcn(graph.feature_dim, 64, graph.num_classes, seed=1)


def measure_epoch(graph, repeats):
    """Wall-clock of one sampled data-management epoch (``epoch_s``)."""
    engine = SampledTrainingEngine(
        graph, _model(graph), ClusterSpec.ecs(8), seed=0
    )
    return wallclock(engine.charge_epoch, repeats=repeats)


def _timed(fn):
    gc.collect()
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _stats(runs):
    runs = sorted(runs)
    return {"min_s": runs[0], "median_s": runs[len(runs) // 2], "runs": runs}


def measure_epoch_pair(graph, repeats):
    """Paired vectorized/reference epoch timings, interleaved run by run
    so slow machine drift cancels out of the min-vs-min ratio."""
    current = SampledTrainingEngine(
        graph, _model(graph), ClusterSpec.ecs(8), seed=0
    )
    with reference_mode():
        reference = SampledTrainingEngine(
            graph, _model(graph), ClusterSpec.ecs(8), seed=0
        )
        reference.charge_epoch()
    current.charge_epoch()
    cur_runs, ref_runs = [], []
    for _ in range(repeats):
        cur_runs.append(_timed(current.charge_epoch))
        with reference_mode():
            ref_runs.append(_timed(reference.charge_epoch))
    return _stats(cur_runs), _stats(ref_runs)


def _compile_once(graph):
    # Fresh engine and cold block cache: plan() memoises on both.
    graph.__dict__.pop("_block_cache", None)
    HybridEngine(graph, _model(graph), ClusterSpec.ecs(8)).plan()


def measure_compile_pair(graph, repeats):
    """Paired vectorized/reference hybrid plan-compile timings."""
    cur_runs, ref_runs = [], []
    for _ in range(repeats):
        cur_runs.append(_timed(lambda: _compile_once(graph)))
        with reference_mode():
            ref_runs.append(_timed(lambda: _compile_once(graph)))
        graph.__dict__.pop("_block_cache", None)
    return _stats(cur_runs), _stats(ref_runs)


def run_experiment(datasets=None, repeats=5, compile_repeats=1,
                   min_speedup=5.0):
    datasets = list(datasets or DATASETS)
    rows = []
    for name in datasets:
        graph = _graph(name)
        epoch, epoch_ref = measure_epoch_pair(graph, repeats)
        compile_, compile_ref = measure_compile_pair(graph, compile_repeats)
        row = {
            "dataset": name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "epoch_s": epoch,
            "epoch_s_reference": epoch_ref,
            "epoch_speedup": epoch_ref["min_s"] / epoch["min_s"],
            "compile_s": compile_,
            "compile_s_reference": compile_ref,
            "compile_speedup": compile_ref["min_s"] / compile_["min_s"],
        }
        rows.append(row)
        print(
            f"{name:>14}: epoch {epoch['min_s']*1e3:8.1f} ms "
            f"(ref {epoch_ref['min_s']*1e3:8.1f} ms, "
            f"{row['epoch_speedup']:.2f}x) | "
            f"compile {compile_['min_s']*1e3:8.1f} ms "
            f"(ref {compile_ref['min_s']*1e3:8.1f} ms, "
            f"{row['compile_speedup']:.2f}x)"
        )
    largest = rows[-1]
    print(
        f"largest ({largest['dataset']}): "
        f"{largest['epoch_speedup']:.2f}x epoch wall-clock "
        f"(floor {min_speedup:.1f}x)"
    )
    assert largest["epoch_speedup"] >= min_speedup, (
        f"epoch speedup {largest['epoch_speedup']:.2f}x on "
        f"{largest['dataset']} is below the {min_speedup:.1f}x floor"
    )
    return {
        "datasets": rows,
        "largest": largest["dataset"],
        "epoch_speedup_largest": largest["epoch_speedup"],
        "min_speedup_floor": min_speedup,
        "repeats": repeats,
        "compile_repeats": compile_repeats,
    }


def test_hotpath_smoke(benchmark):
    result = run_experiment(
        SMOKE_DATASETS, repeats=2, compile_repeats=1, min_speedup=2.0
    )
    assert result["epoch_speedup_largest"] >= 2.0
    graph = _graph("cora")
    benchmark(lambda: measure_epoch(graph, repeats=1))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="hot-path wall-clock before/after trajectory"
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the result dictionary to PATH as JSON")
    parser.add_argument("--smoke", action="store_true",
                        help="CI ladder: small graphs, 2x floor")
    parser.add_argument("--repeats", type=int, default=5,
                        help="epoch timing repeats (default 5)")
    parser.add_argument("--compile-repeats", type=int, default=1,
                        help="compile timing repeats (default 1)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="epoch wall-clock floor on the largest "
                             "dataset (default 5.0, or 2.0 with --smoke)")
    args = parser.parse_args()
    floor = args.min_speedup if args.min_speedup is not None else (
        2.0 if args.smoke else 5.0
    )
    result = run_experiment(
        SMOKE_DATASETS if args.smoke else DATASETS,
        repeats=args.repeats,
        compile_repeats=args.compile_repeats,
        min_speedup=floor,
    )
    write_json(args.json, result)
