"""Ablation: Hybrid's robustness to probe error.

Algorithm 4's decisions rest on probed constants (T_v, T_e, T_c); a
real probe on noisy hardware mis-measures them.  This ablation injects
multiplicative error into T_c (the decision's right-hand side) and
measures the regret: how much slower the resulting Hybrid plan runs
than the correctly-probed one.  Expectation: a wide flat basin --
moderate probe error barely moves the epoch time, because the greedy's
decisions only flip near the t_r = t_c boundary.
"""

import dataclasses

from common import build_engine, fmt_time, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.costmodel.probe import probe_constants

DATASET = "google"
ERRORS = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0]


def run_experiment():
    cluster = ClusterSpec.ecs(8)
    rows = []
    times = {}
    for error in ERRORS:
        engine = build_engine(
            "hybrid", DATASET, cluster=cluster, comm=CommOptions.all()
        )
        true_constants = probe_constants(cluster, engine.model)
        engine.constants = dataclasses.replace(
            true_constants,
            t_c=true_constants.t_c * error,
            t_c_layer=[t * error for t in true_constants.t_c_layer],
        )
        t = engine.charge_epoch()
        times[error] = t
        rows.append([
            f"{error:.2f}x", fmt_time(t),
            f"{engine.plan().cache_ratio() * 100:.0f}%",
        ])
    baseline = times[1.0]
    for row, error in zip(rows, ERRORS):
        row.append(f"{times[error] / baseline:.3f}x")
    print_table(
        f"Ablation: Hybrid under probe error on T_c ({DATASET}, 8-node ECS)",
        ["T_c error", "epoch ms", "cached", "regret vs true probe"],
        rows,
    )
    paper_row("the greedy sits in a flat basin: moderate probe error "
              "barely changes the plan")
    return times


def test_ablation_probe_error(benchmark):
    times = run_experiment()
    baseline = times[1.0]
    # 2x probe error costs little.
    for error in (0.5, 2.0):
        assert times[error] <= baseline * 1.2, error
    # Even 4x error never does worse than the worst single strategy
    # would (sanity: stays within 2x of the true plan).
    for error, t in times.items():
        assert t <= baseline * 2.0, error
    benchmark(lambda: None)


if __name__ == "__main__":
    run_experiment()
