"""Table 3: cost and benefit of Hybrid processing.

100-epoch GCN runtime for DepCache / DepComm / Hybrid on all seven
graphs, plus the one-time Hybrid dependency-partitioning time
("Preprocessing").  Paper shape: Hybrid fastest everywhere;
preprocessing adds at most ~3% of the 100-epoch Hybrid runtime.
"""

from common import build_engine, epoch_time, fmt_time, is_oom, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

DATASETS = ["google", "pokec", "livejournal", "reddit", "orkut", "wiki", "twitter"]
EPOCHS = 100


def run_experiment():
    cluster = ClusterSpec.ecs(16)
    raw = CommOptions.none()
    results = {}
    for name in DATASETS:
        per_epoch = {
            "DepCache": epoch_time("depcache", name, cluster=cluster, comm=raw),
            "DepComm": epoch_time("depcomm", name, cluster=cluster, comm=raw),
            "Hybrid": epoch_time("hybrid", name, cluster=cluster, comm=raw),
        }
        hybrid_engine = build_engine("hybrid", name, cluster=cluster, comm=raw)
        preprocessing = hybrid_engine.plan().preprocessing_s
        results[name] = {
            **{k: v * EPOCHS for k, v in per_epoch.items()},
            "Preprocessing": preprocessing,
        }
    headers = ["engine"] + [n[:3].capitalize() for n in DATASETS]
    rows = []
    for label in ["DepCache", "DepComm", "Hybrid"]:
        rows.append(
            [label] + [fmt_time(results[n][label], unit="s") for n in DATASETS]
        )
    rows.append(
        ["Preprocessing"]
        + [f"+{results[n]['Preprocessing']:.3f}" for n in DATASETS]
    )
    print_table(
        f"Table 3: runtime of {EPOCHS} epochs (s), GCN on 16-node ECS", headers, rows
    )
    paper_row(
        "e.g. Goo 236.6/311.4/141.5 (+1.7); Red 2866.7/327.5/162.6 (+4.5); "
        "preprocessing <= ~3% of Hybrid runtime"
    )
    return results


def test_table3_hybrid_cost(benchmark):
    results = run_experiment()
    for name, r in results.items():
        assert not is_oom(r["Hybrid"])
        # Hybrid <= both baselines (15% heuristic tolerance).
        assert r["Hybrid"] <= min(r["DepCache"], r["DepComm"]) * 1.15, name
        # Preprocessing overhead stays small relative to 100 epochs.
        assert r["Preprocessing"] <= 0.05 * r["Hybrid"], name
    benchmark(lambda: epoch_time("hybrid", "google", cluster=ClusterSpec.ecs(16)))


if __name__ == "__main__":
    run_experiment()
