"""Ablation: model depth (2 / 3 / 4 layers).

The paper evaluates 2-layer models; Algorithms 2-4 generalise to any L.
Deeper models blow up DepCache's closure multiplicatively (k-hop
neighborhoods) while DepComm adds only one more exchange per layer, so
the Hybrid/DepCache gap must widen with depth.
"""

from common import fmt_time, is_oom, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.graph.datasets import load_dataset, spec_of
from repro.training.prep import prepare_graph

DATASET = "livejournal"


def measure(engine_name, layers, comm):
    graph = prepare_graph(load_dataset(DATASET), "gcn")
    spec = spec_of(DATASET)
    model = GNNModel.gcn(
        graph.feature_dim, spec.hidden_dim, graph.num_classes,
        num_layers=layers, seed=1,
    )
    try:
        engine = make_engine(
            engine_name, graph, model, ClusterSpec.ecs(8), comm=comm
        )
        return engine.charge_epoch()
    except Exception:
        return float("nan")


def run_experiment():
    results = {}
    rows = []
    for layers in [2, 3, 4]:
        times = {
            "DepCache": measure("depcache", layers, CommOptions.none()),
            "DepComm": measure("depcomm", layers, CommOptions.all()),
            "Hybrid": measure("hybrid", layers, CommOptions.all()),
        }
        results[layers] = times
        gap = (
            "-" if is_oom(times["DepCache"])
            else f"{times['DepCache'] / times['Hybrid']:.2f}x"
        )
        rows.append([
            str(layers), fmt_time(times["DepCache"]),
            fmt_time(times["DepComm"]), fmt_time(times["Hybrid"]), gap,
        ])
    print_table(
        f"Ablation: model depth, GCN on {DATASET} (8-node ECS)",
        ["layers", "DepCache ms", "DepComm ms", "Hybrid ms",
         "cache/hybrid"],
        rows,
    )
    paper_row("deeper models widen DepCache's redundancy multiplicatively")
    return results


def test_ablation_depth(benchmark):
    results = run_experiment()

    def gap(layers):
        r = results[layers]
        if is_oom(r["DepCache"]):
            return float("inf")
        return r["DepCache"] / r["Hybrid"]

    # The DepCache/Hybrid gap widens (or DepCache dies) with depth.
    assert gap(4) >= gap(3) >= gap(2) * 0.95
    assert gap(4) > gap(2)
    # Hybrid completes at every depth.
    for layers, r in results.items():
        assert not is_oom(r["Hybrid"]), layers
    benchmark(lambda: measure("hybrid", 3, CommOptions.all()))


if __name__ == "__main__":
    run_experiment()
