"""Figure 12: scaling performance from 1 to 16 nodes.

GCN per-epoch time on Pokec, Reddit, Orkut, and Wiki as the cluster
grows.  Graphs that do not fit small clusters start at the minimum
feasible size (the paper does the same).

Paper shapes: DistDGL and NeutronStar (DepComm/Hybrid) shrink with more
nodes, near-linearly for NeutronStar (chunked, destination-specific
communication); ROC scales poorly (whole-block broadcast); DepCache
barely scales (redundant computation does not shrink).
"""

from common import epoch_time, fmt_time, is_oom, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

DATASETS = ["pokec", "reddit", "orkut", "wiki"]
NODES = [1, 2, 4, 8, 16]

SYSTEMS = [
    ("DistDGL", "distdgl", CommOptions.none()),
    ("ROC", "roc", CommOptions.none()),
    ("DepCache", "depcache", CommOptions.none()),
    ("DepComm", "depcomm", CommOptions.all()),
    ("NTS-Hybrid", "hybrid", CommOptions.all()),
]


def run_experiment():
    results = {}
    for name in DATASETS:
        per_system = {}
        for label, engine, comm in SYSTEMS:
            series = {}
            for m in NODES:
                series[m] = epoch_time(
                    engine, name, cluster=ClusterSpec.ecs(m), comm=comm
                )
            per_system[label] = series
        results[name] = per_system
        rows = [
            [label] + [fmt_time(series[m]) for m in NODES]
            for label, series in per_system.items()
        ]
        print_table(
            f"Figure 12 ({name}): per-epoch time (ms) vs cluster size",
            ["system"] + [f"{m} node{'s' if m > 1 else ''}" for m in NODES],
            rows,
        )
    paper_row(
        "Hybrid near-linear (e.g. 2.0x on Pokec 2->16, 6.4x on Reddit 1->16); "
        "ROC poor; DepCache barely scales"
    )
    return results


def speedup(series, lo, hi):
    if is_oom(series[lo]) or is_oom(series[hi]):
        return float("nan")
    return series[lo] / series[hi]


def test_fig12_scaling(benchmark):
    results = run_experiment()
    for name, per_system in results.items():
        hybrid = per_system["NTS-Hybrid"]
        # Hybrid monotically improves with more nodes.
        feasible = [m for m in NODES if not is_oom(hybrid[m])]
        times = [hybrid[m] for m in feasible]
        assert all(a > b for a, b in zip(times, times[1:])), name
        # Hybrid scales clearly better than DepCache 4 -> 16.
        hybrid_gain = speedup(hybrid, 4, 16)
        cache_gain = speedup(per_system["DepCache"], 4, 16)
        assert hybrid_gain > 1.5, name
        if cache_gain == cache_gain:
            assert hybrid_gain > cache_gain, name
        # ...and better than ROC where ROC runs.
        roc_gain = speedup(per_system["ROC"], 4, 16)
        if roc_gain == roc_gain:
            assert hybrid_gain > roc_gain, name
    benchmark(
        lambda: epoch_time(
            "hybrid", "pokec", cluster=ClusterSpec.ecs(8), comm=CommOptions.all()
        )
    )


if __name__ == "__main__":
    run_experiment()
