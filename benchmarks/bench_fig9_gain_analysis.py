"""Figure 9: where NeutronStar's gain comes from.

Normalized speedups over raw DepCache on every graph (GCN, 16 nodes):
raw DepComm, raw Hybrid, then Hybrid + ring (R), + lock-free queuing
(L), + communication/computation overlap (P).

Paper shapes: raw Hybrid beats raw DepCache 1.63-10.34X and raw DepComm
1.24-1.68X; R adds ~1.10-1.15X, L ~1.08-1.12X, P ~1.19-1.41X; the fully
optimized system beats raw Hybrid 1.46-1.77X.
"""

from common import epoch_time, is_oom, print_table, paper_row
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

DATASETS = ["google", "pokec", "livejournal", "reddit", "orkut", "wiki", "twitter"]

VARIANTS = [
    ("DepCache", "depcache", CommOptions.none()),
    ("DepComm", "depcomm", CommOptions.none()),
    ("Hybrid", "hybrid", CommOptions.none()),
    ("Hybrid+R", "hybrid", CommOptions(ring=True)),
    ("Hybrid+RL", "hybrid", CommOptions(ring=True, lock_free=True)),
    ("Hybrid+RLP (NTS)", "hybrid", CommOptions.all()),
]


def run_experiment(cluster=None):
    cluster = cluster or ClusterSpec.ecs(16)
    results = {}
    for name in DATASETS:
        times = {}
        for label, engine, comm in VARIANTS:
            times[label] = epoch_time(engine, name, cluster=cluster, comm=comm)
        results[name] = times
    rows = []
    for name, times in results.items():
        base = times["DepCache"]
        speedups = [
            "-" if is_oom(times[label]) else f"{base / times[label]:.2f}x"
            for label, _, _ in VARIANTS
        ]
        rows.append([name] + speedups)
    print_table(
        "Figure 9: normalized speedup over raw DepCache (GCN, 16-node ECS)",
        ["dataset"] + [label for label, _, _ in VARIANTS],
        rows,
    )
    paper_row(
        "Hybrid/DepCache 1.63-10.34x; Hybrid/DepComm 1.24-1.68x; "
        "R ~1.10-1.15x, L ~1.08-1.12x, P ~1.19-1.41x"
    )
    return results


def test_fig9_gain_analysis(benchmark):
    results = run_experiment()
    for name, times in results.items():
        hybrid = times["Hybrid"]
        # Hybrid at least matches the best single strategy (within 15%;
        # the greedy heuristic leaves a small gap on cache-dominant
        # graphs like Google, where the paper also reports parity).
        assert hybrid <= min(times["DepCache"], times["DepComm"]) * 1.15, name
        # Each optimization is monotone.
        assert times["Hybrid+R"] <= hybrid
        assert times["Hybrid+RL"] <= times["Hybrid+R"]
        assert times["Hybrid+RLP (NTS)"] <= times["Hybrid+RL"]
        # Full optimization pays off noticeably.
        assert hybrid / times["Hybrid+RLP (NTS)"] > 1.1, name
    # On dense graphs Hybrid crushes DepCache.
    assert results["reddit"]["DepCache"] / results["reddit"]["Hybrid"] > 3.0
    # On Google, Hybrid ~ DepCache (paper: "nearly same performance").
    google = results["google"]
    assert google["Hybrid"] <= google["DepCache"] * 1.15
    benchmark(
        lambda: epoch_time(
            "hybrid", "wiki", cluster=ClusterSpec.ecs(16), comm=CommOptions.all()
        )
    )


if __name__ == "__main__":
    run_experiment()
