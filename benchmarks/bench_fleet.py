"""Serving fleet: replication bit-identity, failover recovery, hedging.

Robustness evaluation of the replicated serving fleet (not a figure of
the paper -- NeutronStar trains; this harness asks what replication
must *not* cost).  Three headline shapes:

- **bit-identity**: a fault-free fleet returns predictions and ledgers
  bit-identical to a single :class:`InferenceServer`, at any replica
  count -- replication is routing, never answers;
- **bounded-window recovery**: after every worker of one replica goes
  dark mid-stream, the fleet declares the replica dead from ledger
  signals alone, fails its traffic over, and the post-recovery p99
  lands within 1.25x the pre-fault steady state with zero admitted
  requests dropped;
- **bounded hedging overhead**: a straggling replica triggers hedged
  duplicates that win the ledger, and the duplicate work stays a
  bounded fraction of the stream (fault-free runs hedge nothing).
"""

import numpy as np

from common import paper_row, parse_json_flag, print_table, write_json
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.graph import generators
from repro.partition.hashing import hash_partition
from repro.resilience.faults import (
    FaultSchedule,
    StragglerFault,
    WorkerCrashFault,
)
from repro.serving import (
    FleetConfig,
    InferenceServer,
    ServingConfig,
    ServingFleet,
    WorkloadConfig,
    generate_workload,
)

NUM_VERTICES = 500
NUM_EDGES = 4000
NODES = 2  # workers per serving group
REPLICAS = 3
NUM_REQUESTS = 384
RATE_RPS = 4000.0
ZIPF = 1.1
HEALTH_EVERY = 32
BATCHED = ServingConfig(batch_window_s=0.002, max_batch=32, mode="local")
UNBATCHED = ServingConfig(batch_window_s=0.0, max_batch=1, mode="local")
RECOVERY_P99_FACTOR = 1.25
MAX_HEDGE_FRACTION = 0.5


def _setup():
    graph = generators.erdos_renyi(NUM_VERTICES, NUM_EDGES, seed=3)
    generators.attach_features(graph, 16, 7, seed=4)
    model = GNNModel.build(
        "gcn", graph.feature_dim, 32, graph.num_classes, seed=1,
    )
    cluster = ClusterSpec.ecs(NODES)
    partitioning = hash_partition(graph, NODES)
    return graph, model, cluster, partitioning


def _workload(n=NUM_REQUESTS):
    return generate_workload(
        WorkloadConfig(
            num_requests=n, rate_rps=RATE_RPS, zipf_exponent=ZIPF, seed=5,
        ),
        NUM_VERTICES,
    )


def _fleet(parts, replicas, serving=BATCHED, replica_faults=None):
    graph, model, cluster, partitioning = parts
    return ServingFleet(
        graph, model, cluster, partitioning,
        config=FleetConfig(
            replicas=replicas, serving=serving, seed=9,
            health_every=HEALTH_EVERY,
        ),
        replica_faults=replica_faults,
    )


def _crash(replica_id, at_time):
    return {replica_id: FaultSchedule(
        [WorkerCrashFault(worker=w, at_time=at_time,
                          detection_timeout_s=0.0005, permanent=True)
         for w in range(NODES)],
        seed=3,
    )}


def _straggle(replica_id, start):
    return {replica_id: FaultSchedule(
        [StragglerFault(worker=w, gpu_factor=60.0, start=start)
         for w in range(NODES)],
        seed=3,
    )}


def _p99_ms(records):
    lats = [r.latency_s for r in records if r.latency_s is not None]
    return float(np.percentile(np.array(lats), 99)) * 1e3 if lats else 0.0


def run_experiment():
    parts = _setup()
    requests = _workload()

    # -- replication bit-identity --------------------------------------
    graph, model, cluster, partitioning = parts
    single = InferenceServer(
        graph, model, cluster, partitioning, config=BATCHED,
    ).serve(requests)
    fleets = {
        n: _fleet(parts, n).serve(requests) for n in (1, REPLICAS)
    }
    identical = all(
        r.predictions == single.predictions for r in fleets.values()
    )
    rows = [["single server", "-", f"{single.ledger.p99_s * 1e3:.2f}", "-"]]
    for n, res in sorted(fleets.items()):
        rows.append([
            f"fleet x{n}", str(res.num_segments),
            f"{res.ledger.p99_s * 1e3:.2f}",
            str(res.predictions == single.predictions),
        ])
    print_table(
        f"fault-free replication, erdos_renyi({NUM_VERTICES}, "
        f"{NUM_EDGES}), {NODES} workers/replica, {NUM_REQUESTS} reqs",
        ["deployment", "segments", "p99 ms", "== single"],
        rows,
    )

    # -- crash -> failover -> bounded-window p99 recovery --------------
    crash_t = requests[NUM_REQUESTS // 2].arrival_s
    crashed = _fleet(
        parts, REPLICAS, replica_faults=_crash(1, crash_t),
    ).serve(requests)
    records = crashed.ledger.records
    pre = [r for r in records if r.arrival_s < crash_t]
    declared_seg = next(
        e["segment"] for e in crashed.health_events
        if e["event"] == "replica-dead"
    )
    post = [
        r for r in records if r.req_id >= (declared_seg + 1) * HEALTH_EVERY
    ]
    pre_p99, post_p99 = _p99_ms(pre), _p99_ms(post)
    recovery_ratio = post_p99 / pre_p99 if pre_p99 else float("inf")
    print_table(
        f"replica 1 crash at t={crash_t * 1e3:.1f} ms "
        f"(declared dead in segment {declared_seg})",
        ["phase", "requests", "p99 ms", "shed"],
        [
            ["pre-fault", str(len(pre)), f"{pre_p99:.2f}", "0"],
            ["post-recovery", str(len(post)), f"{post_p99:.2f}",
             str(sum(1 for r in post if r.shed))],
        ],
    )
    print(
        f"failovers: {crashed.failovers}, dropped admitted: "
        f"{crashed.ledger.shed_count}, recovery p99 ratio: "
        f"{recovery_ratio:.2f}x (budget {RECOVERY_P99_FACTOR}x)"
    )

    # -- hedging: wins with bounded duplicate work ---------------------
    hedge_requests = _workload(192)
    straggle_t = hedge_requests[3 * HEALTH_EVERY].arrival_s
    hedged = _fleet(
        parts, 2, serving=UNBATCHED,
        replica_faults=_straggle(1, straggle_t),
    ).serve(hedge_requests)
    clean = _fleet(parts, 2, serving=UNBATCHED).serve(hedge_requests)
    hedge_fraction = hedged.hedges_launched / len(hedge_requests)
    print_table(
        "hedged requests under a 60x straggler on replica 1",
        ["fleet", "hedges", "won", "dup fraction"],
        [
            ["straggling", str(hedged.hedges_launched),
             str(hedged.hedges_won), f"{hedge_fraction:.2f}"],
            ["fault-free", str(clean.hedges_launched),
             str(clean.hedges_won), "0.00"],
        ],
    )

    paper_row(
        "self-healing replicated serving over the hybrid dependency "
        "runtime: observable-signal failover, p99-timer hedging "
        "(not a NeutronStar experiment)"
    )
    return {
        "predictions_identical": identical,
        "single_p99_ms": single.ledger.p99_s * 1e3,
        "fleet_p99_ms": {
            str(n): r.ledger.p99_s * 1e3 for n, r in fleets.items()
        },
        "crash": {
            "pre_p99_ms": pre_p99,
            "post_p99_ms": post_p99,
            "recovery_ratio": recovery_ratio,
            "recovery_budget": RECOVERY_P99_FACTOR,
            "failovers": crashed.failovers,
            "dropped": crashed.ledger.shed_count,
            "declared_segment": declared_seg,
        },
        "hedging": {
            "launched": hedged.hedges_launched,
            "won": hedged.hedges_won,
            "fraction": hedge_fraction,
            "clean_launched": clean.hedges_launched,
        },
    }


def test_fleet(benchmark):
    result = run_experiment()

    # Replication must not perturb answers: bit-identical at 1 and N.
    assert result["predictions_identical"]

    # Failover recovers the p99 within budget and drops nothing.
    crash = result["crash"]
    assert crash["failovers"] > 0
    assert crash["dropped"] == 0
    assert crash["recovery_ratio"] <= RECOVERY_P99_FACTOR, crash

    # Hedges fire under a straggler, win the ledger, and stay bounded;
    # a fault-free fleet never hedges.
    hedging = result["hedging"]
    assert hedging["launched"] > 0
    assert hedging["won"] > 0
    assert hedging["fraction"] <= MAX_HEDGE_FRACTION, hedging
    assert hedging["clean_launched"] == 0

    benchmark(lambda: result["crash"]["recovery_ratio"])


if __name__ == "__main__":
    json_path = parse_json_flag("serving fleet benchmark")
    write_json(json_path, run_experiment())
