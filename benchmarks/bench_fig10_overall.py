"""Figure 10: overall comparison with distributed systems.

Per-epoch time of GCN / GIN / GAT on all seven graphs for: DistDGL
(sampling), ROC (best at 4 nodes, per the paper), DepCache, optimized
DepComm, and NeutronStar (Hybrid + R/L/P), on the 16-node ECS cluster.

Paper shapes: NeutronStar fastest; 1.83-14.25X over DistDGL and ROC;
2.03-15.02X over DepCache; 1.19-1.69X over optimized DepComm; ROC and
DepCache OOM for several cases; ROC does not support GAT; DistDGL has
no distributed GIN.
"""

from common import (
    epoch_time,
    fmt_time,
    is_oom,
    paper_row,
    parse_json_flag,
    print_table,
    write_json,
)
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

DATASETS = ["google", "pokec", "livejournal", "reddit", "orkut", "wiki", "twitter"]

SYSTEMS = [
    # (label, engine, comm options, nodes, unsupported archs)
    ("DistDGL", "distdgl", CommOptions.none(), 16, {"gin"}),
    ("ROC", "roc", CommOptions.none(), 4, {"gat"}),
    ("DepCache", "depcache", CommOptions.none(), 16, set()),
    ("DepComm", "depcomm", CommOptions.all(), 16, set()),
    ("NeutronStar", "hybrid", CommOptions.all(), 16, set()),
]


def run_experiment(archs=("gcn", "gin", "gat")):
    results = {}
    for arch in archs:
        per_arch = {}
        for label, engine, comm, nodes, unsupported in SYSTEMS:
            row = {}
            for name in DATASETS:
                if arch in unsupported:
                    row[name] = None  # system lacks the model
                    continue
                row[name] = epoch_time(
                    engine, name, arch=arch,
                    cluster=ClusterSpec.ecs(nodes), comm=comm,
                )
            per_arch[label] = row
        results[arch] = per_arch
        rows = []
        for label, row in per_arch.items():
            rows.append(
                [label]
                + [
                    "n/a" if row[n] is None else fmt_time(row[n])
                    for n in DATASETS
                ]
            )
        print_table(
            f"Figure 10 ({arch.upper()}): per-epoch time (ms), 16-node ECS "
            "(ROC at its best 4 nodes)",
            ["system"] + [n[:3].capitalize() for n in DATASETS],
            rows,
        )
    paper_row(
        "NTS fastest everywhere; 1.83-14.25x vs DistDGL/ROC, 2.03-15.02x vs "
        "DepCache, 1.19-1.69x vs optimized DepComm; ROC/DepCache OOM in "
        "several cases; DistDGL and NTS complete all"
    )
    return results


def test_fig10_overall(benchmark):
    results = run_experiment()
    for arch, per_arch in results.items():
        nts = per_arch["NeutronStar"]
        for name in DATASETS:
            # NeutronStar completes everything.
            assert not is_oom(nts[name]), (arch, name)
            for label in ["DistDGL", "ROC", "DepCache", "DepComm"]:
                other = per_arch[label][name]
                if other is None or is_oom(other):
                    continue
                # NTS at least as fast as every baseline (small slack).
                assert nts[name] <= other * 1.1, (arch, name, label)
    # DistDGL completes everything it supports (paper: completes all).
    for name in DATASETS:
        assert not is_oom(results["gcn"]["DistDGL"][name])
    # At least one OOM each for ROC and DepCache across the matrix.
    roc_ooms = sum(
        1 for arch in results for n in DATASETS
        if results[arch]["ROC"][n] is not None and is_oom(results[arch]["ROC"][n])
    )
    cache_ooms = sum(
        1 for arch in results for n in DATASETS
        if results[arch]["DepCache"][n] is not None
        and is_oom(results[arch]["DepCache"][n])
    )
    assert roc_ooms >= 1 and cache_ooms >= 1
    # Headline speedups in a paper-plausible band.
    gcn = results["gcn"]
    speedups = [
        gcn["DepCache"][n] / gcn["NeutronStar"][n]
        for n in DATASETS
        if not is_oom(gcn["DepCache"][n])
    ]
    assert max(speedups) > 4.0
    benchmark(
        lambda: epoch_time(
            "hybrid", "orkut", cluster=ClusterSpec.ecs(16), comm=CommOptions.all()
        )
    )


if __name__ == "__main__":
    json_path = parse_json_flag("Figure 10: overall system comparison")
    write_json(json_path, run_experiment())
