"""Figure 11: varying the DepCache-DepComm ratio.

The probing is disabled and the cache/comm split forced to fixed
fractions (0% = pure DepComm ... 100% = pure DepCache); runtime is
decomposed into time spent processing communicated vs cached
dependencies.  GCN on LiveJournal and GAT on Orkut (8-node ECS).

Paper shapes: neither extreme is optimal (U-shaped curve); caching all
dependencies OOMs GAT on Orkut; Algorithm 4's automatic choice lands at
or below the best forced ratio.
"""

from common import build_engine, fmt_time, paper_row, print_table
from repro.cluster.memory import OutOfMemoryError
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]


def sweep(dataset: str, arch: str):
    cluster = ClusterSpec.ecs(8)
    rows = []
    times = {}
    for fraction in FRACTIONS:
        try:
            engine = build_engine(
                "hybrid", dataset, arch=arch, cluster=cluster,
                comm=CommOptions.all(),
                force_cache_fraction=fraction,
                memory_limit_bytes=1 << 40,  # probing disabled: no S cap
            )
            t = engine.charge_epoch()
            comm_share = 1.0 - engine.plan().cache_ratio()
            times[fraction] = t
            rows.append(
                [f"{int(fraction * 100)}%", fmt_time(t),
                 f"{(1 - comm_share) * 100:.0f}%/{comm_share * 100:.0f}%"]
            )
        except OutOfMemoryError:
            times[fraction] = float("nan")
            rows.append([f"{int(fraction * 100)}%", "OOM", "-"])
    # Algorithm 4's automatic decision for reference.
    auto = build_engine(
        "hybrid", dataset, arch=arch, cluster=cluster, comm=CommOptions.all()
    )
    auto_t = auto.charge_epoch()
    rows.append(
        ["auto (Alg. 4)", fmt_time(auto_t),
         f"{auto.plan().cache_ratio() * 100:.0f}% cached"]
    )
    print_table(
        f"Figure 11: cache-ratio sweep, {arch.upper()} on {dataset} (8-node ECS)",
        ["cached fraction", "epoch ms", "cached/comm split"],
        rows,
    )
    return times, auto_t


def run_experiment():
    lj = sweep("livejournal", "gcn")
    orkut = sweep("orkut", "gat")
    paper_row(
        "U-shaped: neither all-comm nor all-cache is optimal; all-cache "
        "OOMs GAT on Orkut; the greedy picks the efficient mix"
    )
    return lj, orkut


def test_fig11_ratio_sweep(benchmark):
    (lj_times, lj_auto), (orkut_times, orkut_auto) = run_experiment()
    # All-cache OOMs GAT on Orkut (paper's headline for this figure).
    assert orkut_times[1.0] != orkut_times[1.0]  # NaN
    # LiveJournal sweep completes everywhere.
    assert all(t == t for t in lj_times.values())
    # A middle ratio beats at least one extreme on both graphs.
    lj_mid = min(lj_times[0.25], lj_times[0.5], lj_times[0.75])
    assert lj_mid <= min(lj_times[0.0], lj_times[1.0]) * 1.02
    orkut_valid = [t for t in orkut_times.values() if t == t]
    orkut_mid = min(orkut_times[0.25], orkut_times[0.5], orkut_times[0.75])
    assert orkut_mid <= orkut_times[0.0] * 1.02
    # The automatic decision is competitive with the best forced ratio.
    assert lj_auto <= min(t for t in lj_times.values() if t == t) * 1.1
    assert orkut_auto <= min(orkut_valid) * 1.1
    benchmark(
        lambda: build_engine(
            "hybrid", "livejournal", cluster=ClusterSpec.ecs(8),
            force_cache_fraction=0.5, memory_limit_bytes=1 << 40,
        ).charge_epoch()
    )


if __name__ == "__main__":
    run_experiment()
