"""Table 5: single-GPU comparison on small graphs.

GCN and GAT per-epoch time on Cora, Citeseer, Pubmed, and Google for
ROC (single-node configuration), DGL, PyG, and NeutronStar on one T4.

Paper shapes: NTS is comparable with DGL/PyG on the citation graphs and
1.96-5.18X faster than ROC on GCN; DGL and PyG OOM on Google (NTS
survives by caching intermediates in host memory); ROC does not support
GAT (no edge-centric NN computation).
"""

from common import build_engine, fmt_time, is_oom, paper_row, print_table
from repro.cluster.memory import OutOfMemoryError
from repro.cluster.spec import ClusterSpec

DATASETS = ["cora", "citeseer", "pubmed", "google"]


def measure(system: str, name: str, arch: str) -> float:
    try:
        if system == "roc":
            # Single-node ROC: like NTS it pages through host memory
            # (ROC's memory manager), but without chunked execution it
            # re-stages whole-graph representation blocks over PCIe
            # every layer -- the driver of the paper's 1.96-5.18x gap.
            engine = build_engine(
                "nts", name, arch=arch, cluster=ClusterSpec.single_gpu()
            )
            t = engine.charge_epoch()
            transfer = 0.0
            for l in range(1, engine.num_layers + 1):
                bytes_l = engine.graph.num_vertices * engine.dims[l - 1] * 4
                transfer += 3 * engine.cluster.device.transfer_time(bytes_l)
            return t + transfer
        engine = build_engine(
            system, name, arch=arch, cluster=ClusterSpec.single_gpu()
        )
        return engine.charge_epoch()
    except OutOfMemoryError:
        return float("nan")


def run_experiment():
    results = {}
    for arch in ["gcn", "gat"]:
        per_arch = {}
        for system in ["roc", "dgl", "pyg", "nts"]:
            row = {}
            for name in DATASETS:
                if system == "roc" and arch == "gat":
                    row[name] = None  # ROC lacks edge-centric NN compute
                    continue
                row[name] = measure(system, name, arch)
            per_arch[system] = row
        results[arch] = per_arch
        rows = []
        for system, row in per_arch.items():
            rows.append(
                [system.upper()]
                + ["n/a" if row[n] is None else fmt_time(row[n]) for n in DATASETS]
            )
        print_table(
            f"Table 5 ({arch.upper()}): single-GPU per-epoch time (ms)",
            ["system"] + [n.capitalize() for n in DATASETS],
            rows,
        )
    paper_row(
        "DGL/PyG OOM on Google; NTS runs it via host-memory caching; "
        "NTS 1.96-5.18x faster than ROC on GCN; ROC lacks GAT"
    )
    return results


def test_table5_single_gpu(benchmark):
    results = run_experiment()
    for arch in ["gcn", "gat"]:
        per_arch = results[arch]
        # DGL and PyG OOM on Google; NTS survives.
        assert is_oom(per_arch["dgl"]["google"]), arch
        assert is_oom(per_arch["pyg"]["google"]), arch
        assert not is_oom(per_arch["nts"]["google"]), arch
        # Small citation graphs fit everywhere.
        for name in ["cora", "citeseer", "pubmed"]:
            for system in ["dgl", "pyg", "nts"]:
                assert not is_oom(per_arch[system][name]), (arch, name, system)
    # NTS comparable with DGL/PyG on citation graphs (within 2x).
    for name in ["cora", "citeseer", "pubmed"]:
        nts = results["gcn"]["nts"][name]
        dgl = results["gcn"]["dgl"][name]
        assert nts < dgl * 2.0
    # NTS clearly faster than single-node ROC on GCN.
    for name in DATASETS:
        roc = results["gcn"]["roc"][name]
        if not is_oom(roc):
            assert results["gcn"]["nts"][name] < roc
    benchmark(lambda: measure("nts", "cora", "gcn"))


if __name__ == "__main__":
    run_experiment()
