"""Sampled mini-batch training: speedup, LABOR frontier, kappa sweep.

Sampling-side evaluation of the compiled-program machinery (DistDGL is
the paper's sampled baseline, Section 5.3; this harness asks what the
sampling subsystem buys once mini-batches lower to the same Program IR
as full-batch training).  The workload is a hub-skewed social graph at
~12x the largest catalog dataset -- large enough that a full-batch
epoch is communication-bound while a sampled epoch touches only the
mini-batch closures.

Headline shapes this module asserts:

- sampled training charges >= 5x less per epoch than full-batch hybrid
  on the same cluster, at a <= 2 point final-accuracy gap after the
  same number of epochs;
- LABOR's shared per-source coin flips shrink the unique remote
  frontier >= 20% versus uniform fanout at the exact same fanout;
- raising the batch-dependency knob kappa monotonically removes comm
  bytes (reused closure rows are never re-fetched).
"""

import numpy as np
from common import paper_row, parse_json_flag, print_table, write_json
from repro.cluster.memory import OutOfMemoryError
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.graph import generators
from repro.tensor.optim import Adam
from repro.training.prep import prepare_graph

NUM_VERTICES = 40960  # ~12x the largest catalog graph
AVG_DEGREE = 16.0
NODES = 4
FANOUTS = (4, 8)  # below the average degree, so sampling actually prunes
BATCH_SIZE = 512
EPOCHS = 8
LR = 0.01
KAPPAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _graph():
    graph = generators.scaled_social(
        NUM_VERTICES, avg_degree=AVG_DEGREE, num_communities=16,
        hub_exponent=0.85, seed=0,
    )
    generators.attach_features(graph, 64, 16, seed=1, class_signal=0.6)
    # A small labelled set is the mini-batch regime: full-batch still
    # pays for every vertex, sampling pays only for the seeds' closures.
    graph.set_split(
        train_fraction=0.05, val_fraction=0.1, rng=np.random.default_rng(0)
    )
    return prepare_graph(graph, "gcn")


def _model(graph):
    return GNNModel.build(
        "gcn", graph.feature_dim, 64, graph.num_classes, num_layers=2, seed=1
    )


def _sampled(graph, **kwargs):
    kwargs.setdefault("fanouts", FANOUTS)
    kwargs.setdefault("batch_size", BATCH_SIZE)
    kwargs.setdefault("seed", 0)
    return make_engine(
        "sampled", graph, _model(graph), ClusterSpec.ecs(NODES), **kwargs
    )


def _train_accuracy(graph, engine):
    optimizer = Adam(engine.model.parameters(), lr=LR)
    for _ in range(EPOCHS):
        engine.run_epoch(optimizer)
    return float(engine.evaluate(graph.test_mask))


def run_experiment():
    graph = _graph()
    cluster = ClusterSpec.ecs(NODES)

    # -- full-batch vs sampled: charged epoch time + accuracy ----------
    full_name = "hybrid"
    try:
        full = make_engine(full_name, graph, _model(graph), cluster)
        full_epoch_s = full.charge_epoch()
    except OutOfMemoryError:
        full_name = "depcomm"
        full = make_engine(full_name, graph, _model(graph), cluster)
        full_epoch_s = full.charge_epoch()
    full_accuracy = _train_accuracy(graph, full)

    sampled = _sampled(graph, sampler="uniform")
    sampled_epoch_s = sampled.charge_epoch()
    sampled_accuracy = _train_accuracy(graph, sampled)

    speedup = full_epoch_s / sampled_epoch_s
    gap = full_accuracy - sampled_accuracy
    print_table(
        f"full-batch vs sampled on scaled_social({NUM_VERTICES}), "
        f"2-layer GCN, {NODES} workers, fanouts {FANOUTS}, "
        f"batch {BATCH_SIZE}, {EPOCHS} epochs",
        ["training", "epoch ms", "accuracy", "speedup"],
        [
            [f"full-batch {full_name}", f"{full_epoch_s * 1e3:.2f}",
             f"{full_accuracy * 100:.2f}%", "-"],
            ["sampled uniform", f"{sampled_epoch_s * 1e3:.2f}",
             f"{sampled_accuracy * 100:.2f}%", f"{speedup:.2f}x"],
        ],
    )
    print(f"accuracy gap: {gap * 100:+.2f} points")

    # -- LABOR vs uniform at matched fanout ----------------------------
    frontier = {}
    rows = []
    for sampler in ("uniform", "labor"):
        engine = _sampled(graph, sampler=sampler)
        engine.charge_epoch()
        stats = engine.last_epoch_stats
        frontier[sampler] = stats
        rows.append([
            sampler, str(stats["unique_remote"]), str(stats["fetched_rows"]),
            str(stats["sampled_edges"]),
        ])
    labor_reduction = 1.0 - (
        frontier["labor"]["unique_remote"] / frontier["uniform"]["unique_remote"]
    )
    print_table(
        f"unique remote vertices per epoch at matched fanout {FANOUTS}",
        ["sampler", "uniq remote", "fetched rows", "sampled edges"],
        rows,
    )
    print(f"LABOR unique-remote reduction: {labor_reduction * 100:.1f}%")

    # -- kappa sweep: batch-dependency vs comm volume ------------------
    kappa_sweep = []
    rows = []
    for kappa in KAPPAS:
        engine = _sampled(graph, sampler="uniform", kappa=kappa)
        engine.charge_epoch()
        engine.charge_epoch()  # reuse needs one epoch of history
        stats = engine.last_epoch_stats
        kappa_sweep.append({
            "kappa": kappa,
            "comm_bytes": int(stats["comm_bytes"]),
            "fetched_rows": int(stats["fetched_rows"]),
            "reused_rows": int(stats["reused_rows"]),
            "epoch_s": float(stats["epoch_time_s"]),
        })
        rows.append([
            f"{kappa:g}", f"{stats['comm_bytes'] / 1e3:.1f}",
            str(stats["fetched_rows"]), str(stats["reused_rows"]),
            f"{stats['epoch_time_s'] * 1e3:.2f}",
        ])
    print_table(
        "batch-dependency kappa vs per-epoch comm (uniform sampler)",
        ["kappa", "comm KB", "fetched", "reused", "epoch ms"],
        rows,
    )

    paper_row(
        "DistDGL-style sampling (Sec 5.3) rebuilt on the Program IR: "
        "mini-batch closures compile to the same typed programs as "
        "full-batch training; LABOR/LADIES and kappa reuse are this "
        "repo's extensions"
    )
    return {
        "full_engine": full_name,
        "full_epoch_s": full_epoch_s,
        "sampled_epoch_s": sampled_epoch_s,
        "speedup": speedup,
        "full_accuracy": full_accuracy,
        "sampled_accuracy": sampled_accuracy,
        "accuracy_gap": gap,
        "uniform_unique_remote": int(frontier["uniform"]["unique_remote"]),
        "labor_unique_remote": int(frontier["labor"]["unique_remote"]),
        "labor_reduction": labor_reduction,
        "kappa_sweep": kappa_sweep,
    }


def test_sampling_pipeline(benchmark):
    result = run_experiment()

    # Sampling is the headline: >= 5x cheaper epochs, <= 2 point gap.
    assert result["speedup"] >= 5.0, result["speedup"]
    assert result["accuracy_gap"] <= 0.02, result["accuracy_gap"]

    # Shared coin flips shrink the union frontier at identical fanout.
    assert result["labor_reduction"] >= 0.20, result["labor_reduction"]

    # kappa only ever removes traffic, and actually removes some.
    volumes = [p["comm_bytes"] for p in result["kappa_sweep"]]
    assert all(a >= b for a, b in zip(volumes, volumes[1:])), volumes
    assert volumes[-1] < volumes[0], volumes

    benchmark(lambda: result["speedup"])


if __name__ == "__main__":
    json_path = parse_json_flag("sampled mini-batch training benchmark")
    write_json(json_path, run_experiment())
