"""Operations benchmark: graded detect / localize / mitigate scores.

Runs every registered ops problem twice -- mitigated and unmitigated --
and reports the operational headline numbers the subsystem grades:
time-to-detect, blame accuracy, recovery time after mitigation, and
the overall score delta that mitigating buys.  (Not a figure of the
paper: NeutronStar's evaluation assumes a healthy cluster; this harness
asks how observable and repairable its hybrid-dependency runs are when
the cluster degrades.)

Headline shapes this module asserts:

- every built-in problem is detected with the correct degradation
  class and perfect blame (worker / link / layer) on the default seed;
- every mitigation recovers: the post-mitigation stream returns under
  the problem's recovery threshold in finite time;
- mitigating strictly beats not mitigating on the overall grade for
  every problem (the unmitigated permanent crash aborts outright);
- recorded bundles replay bit-identically, engine-free.
"""

from common import paper_row, parse_json_flag, print_table, write_json

from repro.ops import (
    bundle_from_result,
    list_problems,
    replay_bundle,
    run_problem,
)

SEED = 0


def run_experiment():
    rows = []
    result = {"seed": SEED, "problems": {}}
    for problem in list_problems():
        mitigated = run_problem(problem, seed=SEED, mitigate=True)
        unmitigated = run_problem(problem, seed=SEED, mitigate=False)
        replay = replay_bundle(bundle_from_result(mitigated))
        g = mitigated.grade
        entry = {
            "kind": problem.kind,
            "verdict_kind": mitigated.verdict.kind
            if mitigated.verdict else None,
            "ttd_s": g.detection.ttd_s,
            "ttd_score": g.detection.ttd_score,
            "blame_score": g.detection.blame_score,
            "detection_score": g.detection.score,
            "recovery_s": g.mitigation.recovery_s,
            "recovered": g.mitigation.recovered,
            "regression": g.mitigation.regression,
            "mitigation_score": g.mitigation.score,
            "overall": g.overall,
            "unmitigated_overall": unmitigated.grade.overall,
            "unmitigated_aborted": unmitigated.aborted,
            "replay_identical": replay.identical,
        }
        result["problems"][problem.name] = entry
        rows.append([
            problem.name,
            problem.kind,
            f"{entry['ttd_s'] * 1e3:.2f}",
            f"{entry['blame_score']:.2f}",
            f"{entry['recovery_s'] * 1e3:.2f}",
            f"{entry['overall']:.2f}",
            f"{entry['unmitigated_overall']:.2f}",
            "yes" if entry["replay_identical"] else "NO",
        ])
    print_table(
        "ops problems: graded detect/localize/mitigate (seed 0)",
        ["problem", "kind", "ttd ms", "blame", "recovery ms",
         "overall", "no-mitigation", "replay"],
        rows,
    )
    paper_row(
        "operations benchmark over the hybrid-dependency runs: injected "
        "degradations must be detectable from observable signals alone "
        "and repairable with the elastic/SLO machinery (not a "
        "NeutronStar experiment)"
    )
    return result


def test_ops(benchmark):
    result = run_experiment()
    problems = result["problems"]
    assert len(problems) >= 5

    for name, entry in problems.items():
        # Detection: right class, right culprit.
        assert entry["verdict_kind"] == entry["kind"], name
        assert entry["blame_score"] == 1.0, name
        assert entry["detection_score"] >= 0.9, name
        # Mitigation: the stream actually recovers.
        assert entry["recovered"], name
        assert entry["recovery_s"] < float("inf"), name
        # Mitigating strictly beats doing nothing.
        assert entry["overall"] > entry["unmitigated_overall"], name
        # Offline replay reproduces the recorded run bit-identically.
        assert entry["replay_identical"], name

    # The unmitigated permanent crash kills the run outright.
    assert problems["train-crash-permanent"]["unmitigated_aborted"]

    benchmark(lambda: len(problems))


if __name__ == "__main__":
    json_path = parse_json_flag("operations benchmark")
    write_json(json_path, run_experiment())
