"""Ablation: the hybrid cost model's knobs (mu and the memory budget).

Not a paper table — an ablation of the design choices DESIGN.md calls
out: Eq. 3's overlap-trimming factor mu and Algorithm 4's memory
constraint S.  Expectations: the greedy is robust to mu (the V_rep
re-measurement already removes most double counting), and shrinking S
pushes Hybrid monotonically toward DepComm behaviour (fewer cached
dependencies, more communication).
"""

from common import build_engine, fmt_time, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

DATASET = "wiki"


def sweep_mu():
    rows = []
    times = {}
    for mu in [0.2, 0.5, 0.8, 1.0]:
        engine = build_engine(
            "hybrid", DATASET, cluster=ClusterSpec.ecs(8),
            comm=CommOptions.all(), mu=mu,
        )
        t = engine.charge_epoch()
        times[mu] = t
        rows.append([f"{mu:.1f}", fmt_time(t),
                     f"{engine.plan().cache_ratio() * 100:.0f}%"])
    print_table(
        f"Ablation: Eq. 3's mu on {DATASET} (Hybrid, 8-node ECS)",
        ["mu", "epoch ms", "cached"],
        rows,
    )
    return times


def sweep_memory_budget():
    rows = []
    times = {}
    budgets = [1 << 18, 1 << 21, 1 << 24, 1 << 30]
    for budget in budgets:
        engine = build_engine(
            "hybrid", DATASET, cluster=ClusterSpec.ecs(8),
            comm=CommOptions.all(), memory_limit_bytes=budget,
        )
        t = engine.charge_epoch()
        ratio = engine.plan().cache_ratio()
        times[budget] = (t, ratio)
        rows.append([f"{budget / 1024 / 1024:.2f} MB", fmt_time(t),
                     f"{ratio * 100:.0f}%"])
    print_table(
        f"Ablation: Algorithm 4's memory budget S on {DATASET}",
        ["budget", "epoch ms", "cached"],
        rows,
    )
    paper_row("smaller S -> fewer cached deps -> closer to DepComm")
    return times


def run_experiment():
    return sweep_mu(), sweep_memory_budget()


def test_ablation_costmodel(benchmark):
    mu_times, budget_times = run_experiment()
    # Robust to mu: spread below 25%.
    values = list(mu_times.values())
    assert max(values) / min(values) < 1.25
    # Cache ratio grows monotonically with the budget.
    ratios = [budget_times[b][1] for b in sorted(budget_times)]
    assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))
    # A starved budget caches (almost) nothing.
    assert ratios[0] < 0.2
    benchmark(
        lambda: build_engine(
            "hybrid", DATASET, cluster=ClusterSpec.ecs(8), mu=0.5
        ).charge_epoch()
    )


if __name__ == "__main__":
    run_experiment()
