"""Shared helpers for the per-table/per-figure benchmark harnesses.

Every ``bench_*.py`` module regenerates one table or figure of the
paper's evaluation section: it prints the same rows/series the paper
reports and asserts the headline *shape* (who wins, by roughly what
factor).  Each module is runnable directly (``python
benchmarks/bench_fig10_overall.py``) and through
``pytest benchmarks/ --benchmark-only``.

Modules that support it accept ``--json PATH`` when run directly and
write their result dictionary to ``PATH`` (OOM entries serialise as
the string ``"OOM"``, since JSON has no NaN).
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Optional

from repro.cluster.memory import OutOfMemoryError
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.core.model import GNNModel
from repro.engines import SharedMemoryEngine, make_engine
from repro.graph.datasets import load_dataset, spec_of
from repro.training.prep import prepare_graph
from repro.utils import render_table
from repro.utils.jsonio import jsonable as _jsonable  # noqa: F401 (re-export)
from repro.utils.jsonio import write_json  # noqa: F401 (re-export)

OOM = float("nan")


def build_engine(
    engine_name: str,
    dataset: str,
    arch: str = "gcn",
    cluster: Optional[ClusterSpec] = None,
    comm: CommOptions = CommOptions.all(),
    hidden: Optional[int] = None,
    scale: float = 1.0,
    seed: int = 1,
    **kwargs,
):
    """Construct an engine on a prepared catalog dataset."""
    graph = prepare_graph(load_dataset(dataset, scale=scale), arch)
    spec = spec_of(dataset)
    model = GNNModel.build(
        arch, graph.feature_dim, hidden or spec.hidden_dim,
        graph.num_classes, seed=seed,
    )
    cluster = cluster or ClusterSpec.ecs(16)
    if engine_name in SharedMemoryEngine.VARIANTS:
        kwargs.setdefault("paper_num_vertices", spec.paper_num_vertices)
        return SharedMemoryEngine(
            graph, model, cluster=cluster, variant=engine_name, **kwargs
        )
    return make_engine(engine_name, graph, model, cluster, comm=comm, **kwargs)


def epoch_time(engine_name: str, dataset: str, **kwargs) -> float:
    """Modeled per-epoch seconds, or NaN on out-of-memory."""
    try:
        engine = build_engine(engine_name, dataset, **kwargs)
        return engine.charge_epoch()
    except OutOfMemoryError:
        return OOM


def is_oom(value: float) -> bool:
    return value != value  # NaN


def wallclock(fn: Callable[[], object], repeats: int = 3,
              warmup: int = 1) -> dict:
    """Real (``time.perf_counter``) seconds of ``fn``, best-of-N.

    Convention for wall-clock benchmark JSON: ``compile_s`` is the
    seconds to build an engine's plan/program, ``epoch_s`` the seconds
    of one charged epoch -- both *measured host* time, unlike the
    modeled cluster seconds :func:`epoch_time` reports.  Returns
    ``{"min_s", "median_s", "runs"}``; ``min_s`` is the headline number
    (least scheduler noise), ``runs`` keeps the raw samples honest.
    """
    for _ in range(warmup):
        fn()
    runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    runs.sort()
    return {
        "min_s": runs[0],
        "median_s": runs[len(runs) // 2],
        "runs": runs,
    }


def fmt_time(seconds: float, unit: str = "ms") -> str:
    if is_oom(seconds):
        return "OOM"
    if unit == "ms":
        return f"{seconds * 1e3:.2f}"
    return f"{seconds:.2f}"


def fmt_ratio(value: float) -> str:
    return "-" if is_oom(value) else f"{value:.2f}x"


def print_table(title: str, headers, rows) -> None:
    print()
    print(f"### {title}")
    print(render_table(headers, rows))


def paper_row(note: str) -> None:
    print(f"    (paper: {note})")


def parse_json_flag(description: str) -> Optional[str]:
    """Parse a benchmark module's ``--json PATH`` flag (None if absent)."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the result dictionary to PATH as JSON")
    return parser.parse_args().json


# ``_jsonable`` / ``write_json`` live in ``repro.utils.jsonio`` so the
# CLI shares the same serialisation rules; re-exported above for the
# existing bench modules.
