"""Figure 14: accuracy over (modeled) time on Reddit.

Real numerical training: the full-batch engines (Hybrid, DepComm,
DepCache) share identical numerics, so one training run provides their
common accuracy-vs-epoch curve and each engine's modeled per-epoch time
stretches it onto the time axis.  DepCache-sampling (DistDGL-style
mini-batch training) is trained separately -- its curve genuinely
differs.

Paper shapes: full-batch engines converge to ~94-95%; sampling tops out
lower (93.92%); Hybrid reaches the sampling ceiling (the target
accuracy) first; DepCache is slowest to the target by a wide margin.

The run uses a scaled-down Reddit (scale 0.5) and 4 workers so the real
numerics finish in seconds.
"""

from common import build_engine, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.training.trainer import DistributedTrainer

SCALE = 0.5
NODES = 4
EPOCHS = 60
EVAL_EVERY = 5


def run_experiment(seed=1):
    cluster = ClusterSpec.ecs(NODES)

    # One real full-batch training provides the accuracy-vs-epoch curve.
    reference = build_engine(
        "hybrid", "reddit", cluster=cluster, comm=CommOptions.all(),
        scale=SCALE, seed=seed,
    )
    trainer = DistributedTrainer(reference, lr=0.01)
    history = trainer.train(epochs=EPOCHS, eval_every=EVAL_EVERY)
    curve = [(p.epoch, p.accuracy) for p in history.convergence]

    # Per-epoch modeled times of each full-batch engine.
    epoch_times = {}
    for label, engine_name, comm in [
        ("Hybrid", "hybrid", CommOptions.all()),
        ("DepComm", "depcomm", CommOptions.all()),
        ("DepCache", "depcache", CommOptions.none()),
    ]:
        engine = build_engine(
            engine_name, "reddit", cluster=cluster, comm=comm,
            scale=SCALE, seed=seed,
        )
        epoch_times[label] = engine.charge_epoch()

    # Sampling engine: separate real mini-batch training.
    sampler = build_engine(
        "distdgl", "reddit", cluster=cluster, comm=CommOptions.none(),
        scale=SCALE, seed=seed,
    )
    sample_trainer = DistributedTrainer(sampler, lr=0.01)
    sample_history = sample_trainer.train(epochs=EPOCHS, eval_every=EVAL_EVERY)

    full_batch_best = max(acc for _, acc in curve)
    sampling_best = sample_history.best_accuracy()
    target = sampling_best  # the paper uses sampling's ceiling as target

    def time_to(curve_points, per_epoch, target_acc):
        for epoch, acc in curve_points:
            if acc >= target_acc:
                return epoch * per_epoch, epoch
        return None, None

    rows = []
    results = {}
    for label, per_epoch in epoch_times.items():
        t, epoch = time_to(curve, per_epoch, target)
        results[label] = {
            "per_epoch": per_epoch, "time_to_target": t,
            "best": full_batch_best,
        }
        rows.append([
            label, f"{full_batch_best * 100:.2f}%",
            f"{per_epoch * 1e3:.2f}",
            "-" if t is None else f"{t:.3f}s (epoch {epoch})",
        ])
    sample_curve = [(p.epoch, p.accuracy) for p in sample_history.convergence]
    t_sample = None
    for point in sample_history.convergence:
        if point.accuracy >= target:
            t_sample = point.time_s
            break
    results["DepCache-sampling"] = {
        "per_epoch": sample_history.avg_epoch_time_s,
        "time_to_target": t_sample,
        "best": sampling_best,
    }
    rows.append([
        "DepCache-sampling", f"{sampling_best * 100:.2f}%",
        f"{sample_history.avg_epoch_time_s * 1e3:.2f}",
        "-" if t_sample is None else f"{t_sample:.3f}s",
    ])
    print_table(
        f"Figure 14: accuracy vs time, GCN on Reddit (scale {SCALE}, "
        f"{NODES} nodes; target = sampling ceiling {target * 100:.2f}%)",
        ["engine", "best accuracy", "epoch ms", "time to target"],
        rows,
    )
    paper_row(
        "full-batch best ~94-95% > sampling 93.92%; Hybrid reaches the "
        "target first (1.20x vs DepComm, 1.96x vs sampling); DepCache slowest"
    )
    return results


def test_fig14_accuracy(benchmark):
    results = run_experiment()
    full_best = results["Hybrid"]["best"]
    sample_best = results["DepCache-sampling"]["best"]
    # Full-batch training beats the sampling ceiling.
    assert full_best > sample_best
    assert full_best > 0.80
    # Everyone reaches the sampling target; Hybrid first.
    t_hybrid = results["Hybrid"]["time_to_target"]
    t_comm = results["DepComm"]["time_to_target"]
    t_cache = results["DepCache"]["time_to_target"]
    assert t_hybrid is not None and t_comm is not None and t_cache is not None
    assert t_hybrid <= t_comm
    assert t_hybrid < t_cache / 1.5  # DepCache far behind
    benchmark(lambda: None)  # the experiment itself is the measurement


if __name__ == "__main__":
    run_experiment()
