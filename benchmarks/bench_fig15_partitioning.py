"""Figure 15: Hybrid vs DepComm under different graph partitioners.

Chunk-based, Metis-like, and Fennel partitioning on Reddit, Orkut, and
Wiki (16-node ECS, GCN, all optimizations on for both engines).

Paper shapes: Hybrid beats optimized DepComm under every partitioner
(1.21-1.48X chunk, 1.12-1.23X Metis, 1.17-1.32X Fennel) -- dependency
management is orthogonal to graph partitioning, and better partitioners
shrink but do not close the gap.
"""

from common import build_engine, fmt_time, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.partition import get_partitioner

DATASETS = ["reddit", "orkut", "wiki"]
PARTITIONERS = ["chunk", "metis", "fennel"]


def run_experiment():
    cluster = ClusterSpec.ecs(16)
    results = {}
    rows = []
    for name in DATASETS:
        per_method = {}
        for method in PARTITIONERS:
            times = {}
            for engine_name in ["depcomm", "hybrid"]:
                from repro.graph.datasets import load_dataset
                from repro.training.prep import prepare_graph

                graph = prepare_graph(load_dataset(name), "gcn")
                partitioning = get_partitioner(method)(graph, 16)
                engine = build_engine(
                    engine_name, name, cluster=cluster, comm=CommOptions.all(),
                    partitioning=partitioning,
                )
                times[engine_name] = engine.charge_epoch()
            per_method[method] = times
            rows.append([
                name, method,
                fmt_time(times["depcomm"]), fmt_time(times["hybrid"]),
                f"{times['depcomm'] / times['hybrid']:.2f}x",
            ])
        results[name] = per_method
    print_table(
        "Figure 15: Hybrid vs optimized DepComm under graph partitioners "
        "(GCN, 16-node ECS)",
        ["dataset", "partitioner", "DepComm ms", "Hybrid ms", "speedup"],
        rows,
    )
    paper_row(
        "Hybrid/DepComm: 1.21-1.48x (chunk), 1.12-1.23x (Metis), "
        "1.17-1.32x (Fennel)"
    )
    return results


def test_fig15_partitioning(benchmark):
    results = run_experiment()
    for name, per_method in results.items():
        for method, times in per_method.items():
            # Hybrid wins under every partitioner.
            assert times["hybrid"] < times["depcomm"], (name, method)
    # The gap persists across partitioners (orthogonality claim): the
    # spread of speedups stays in a narrow band rather than collapsing.
    speedups = [
        times["depcomm"] / times["hybrid"]
        for per_method in results.values()
        for times in per_method.values()
    ]
    assert min(speedups) > 1.05
    assert max(speedups) / min(speedups) < 1.5
    benchmark(
        lambda: build_engine(
            "hybrid", "wiki", cluster=ClusterSpec.ecs(16),
            comm=CommOptions.all(),
        ).charge_epoch()
    )


if __name__ == "__main__":
    run_experiment()
