"""Tensor-parallel crossover: degree skew x hidden width on scaled-social.

NeutronTP's pitch is that dense slice transposes sidestep skew: their
all-to-all moves the same bytes from every worker no matter where the
hubs live, while the per-vertex exchange serializes the hub owner's
sends and makes the whole BSP step wait.  The sweep fixes the graph
family (scaled-social, 3072 vertices, degree 16, 16-node ECS) and walks
hub skew x hidden width; the headline shape is the crossover on the
wide-hidden column: tensor parallelism wins on the most skewed
configuration -- and the four-way greedy (``hybrid4``) captures that win
automatically -- while on the flattest configuration the all-to-all's
per-peer latency floor loses to the overlappable sparse exchange.
"""

from common import parse_json_flag, print_table, write_json
from repro.cluster.spec import ClusterSpec
from repro.engines.tp_sweep import PURE_THREE_WAY, run_tp_sweep

NUM_WORKERS = 16


def run_experiment():
    result = run_tp_sweep(cluster=ClusterSpec.ecs(NUM_WORKERS))
    rows = []
    for r in result["rows"]:
        times = r["times_s"]
        rows.append([
            f"{r['hub_exponent']:g}", str(r["hidden"]),
            *(f"{times[name] * 1e3:.3f}" for name in PURE_THREE_WAY),
            f"{times['tp'] * 1e3:.3f}",
            f"{times['hybrid4'] * 1e3:.3f}",
            "".join("T" if flag else "." for flag in r["tp_layers"]),
            "hybrid4" if r["four_way_wins"]
            else ("tp" if r["tp_wins"] else "three-way"),
        ])
    print_table(
        f"Tensor-parallel crossover, GCN on scaled-social "
        f"({NUM_WORKERS}-node ECS)",
        ["skew", "hidden", "depcache ms", "depcomm ms", "hybrid ms",
         "tp ms", "hybrid4 ms", "tp layers", "winner"],
        rows,
    )
    return result


def test_tp_crossover(benchmark):
    result = run_experiment()
    cells = {
        (r["hub_exponent"], r["hidden"]): r for r in result["rows"]
    }
    crossover = result["crossover"]

    # Headline: on the most skewed configuration (highest exponent,
    # widest hidden) tensor parallelism wins -- the pure TP engine
    # undercuts the paper's own hybrid plan, and the four-way greedy,
    # by flipping only the layer where the slice transposes pay off,
    # beats the BEST pure three-way plan (here full replication, which
    # skew makes artificially cheap: mirror dedup collapses the
    # dependency set).
    most_skewed = cells[tuple(crossover["most_skewed"]["cell"])]
    assert most_skewed["times_s"]["tp"] < most_skewed["times_s"]["hybrid"], (
        most_skewed
    )
    assert most_skewed["four_way_wins"], most_skewed
    assert any(most_skewed["tp_layers"]), most_skewed

    # On the flattest configuration the per-peer latency floor loses:
    # pure TP is slower than every three-way plan and the four-way
    # greedy correctly declines to flip any layer.
    flattest = cells[tuple(crossover["flattest"]["cell"])]
    assert not flattest["tp_wins"], flattest
    assert flattest["times_s"]["tp"] > flattest["times_s"]["hybrid"], flattest
    assert not any(flattest["tp_layers"]), flattest

    for r in result["rows"]:
        times = r["times_s"]
        # The four-way greedy never loses to the plain hybrid: where it
        # declines to flip it charges the identical plan, where it flips
        # the flip pays off.
        assert times["hybrid4"] <= times["hybrid"] * (1 + 1e-9), r
        # Layer 1's inputs are raw features (recompute is free), so no
        # skew or width ever flips it.
        assert not (r["tp_layers"] and r["tp_layers"][0]), r

    # The crossover is a wide-hidden phenomenon: every four-way win sits
    # on the widest hidden column of the grid.
    widest = max(result["hiddens"])
    assert crossover["four_way_win_cells"], crossover
    assert all(h == widest for _, h in crossover["four_way_win_cells"])

    benchmark(lambda: None)


if __name__ == "__main__":
    json_path = parse_json_flag(__doc__.splitlines()[0])
    results = run_experiment()
    if json_path:
        write_json(json_path, results)
