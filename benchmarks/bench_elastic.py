"""Elastic recovery: shrink-and-continue vs rollback-restart.

Not a paper figure -- the paper assumes replacements are always
available -- but the natural follow-up question: when a worker dies
*permanently* (spot reclaim, hardware loss), is it cheaper to wait for
a replacement and replay (``restart``) or to migrate the dead partition
onto the survivors and keep going at N-1 workers (``shrink``)?

Two experiments:

1. **Provisioning sweep**: the same permanent crash, recovered both
   ways, while the modeled replacement-provisioning delay grows.
   Restart's bill scales with the delay; shrink pays a one-time
   migration (features + adjacency + closure re-replication) that does
   not.  Past the crossover, shrink wins.
2. **Churn asymmetry**: the same shrink on each engine.  DepCache's
   survivors must re-replicate L-hop closures for the absorbed
   vertices, so it pays more migration traffic than DepComm, whose
   survivors only re-register mirrors.
"""

from common import paper_row, parse_json_flag, print_table, write_json
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.graph.datasets import load_dataset, spec_of
from repro.resilience import (
    FaultSchedule,
    RecoveryPolicy,
    RetryPolicy,
    WorkerCrashFault,
    run_chaos,
)
from repro.training.prep import prepare_graph

ENGINES = ["depcache", "depcomm", "hybrid"]
DATASET = "google"
SCALE = 0.1
NODES = 4
EPOCHS = 6
PROVISION_SWEEP_S = [0.0, 0.05, 0.2, 1.0]


def _workload(dataset: str = DATASET, scale: float = SCALE):
    graph = prepare_graph(load_dataset(dataset, scale=scale), "gcn")
    spec = spec_of(dataset)

    def model_factory():
        return GNNModel.build(
            "gcn", graph.feature_dim, spec.hidden_dim, graph.num_classes,
            seed=1,
        )

    return graph, model_factory


def _crash_time(graph, model_factory, cluster) -> float:
    """Aim the crash at roughly epoch 2.5 of a depcomm run."""
    probe = make_engine("depcomm", graph, model_factory(), cluster)
    return probe.charge_epoch() * 2.5


def run_provision_sweep(dataset: str = DATASET, engine_name: str = "hybrid"):
    """Makespan of restart vs shrink as provisioning gets slower."""
    graph, model_factory = _workload(dataset)
    cluster = ClusterSpec.ecs(NODES)
    crash_t = _crash_time(graph, model_factory, cluster)
    results = {"provision_s": PROVISION_SWEEP_S, "restart": [], "shrink": []}
    rows = []
    for provision_s in PROVISION_SWEEP_S:
        row = [f"{provision_s * 1e3:.0f}"]
        for strategy in ("restart", "shrink"):
            schedule = FaultSchedule([
                WorkerCrashFault(worker=1, at_time=crash_t, permanent=True)
            ])
            policy = RecoveryPolicy(
                checkpoint_every=2,
                provision_s=provision_s,
                strategy=strategy,
            )
            report = run_chaos(
                engine_name, graph, model_factory, cluster, schedule,
                epochs=EPOCHS, retry=RetryPolicy(), policy=policy,
            )
            results[strategy].append(report.makespan_s)
            row.append(f"{report.makespan_s * 1e3:.2f}")
        rows.append(row)
    print_table(
        f"Permanent crash on 1 of {NODES} workers ({engine_name} on "
        f"{dataset}): makespan (ms) vs replacement-provisioning delay",
        ["provision ms", "restart", "shrink"],
        rows,
    )
    paper_row(
        "expected: restart's makespan grows with the provisioning delay; "
        "shrink's one-time migration cost does not -- past the crossover "
        "shrink-and-continue wins"
    )
    return results


def run_churn_comparison(dataset: str = DATASET):
    """The same shrink on each engine: who pays what to absorb."""
    graph, model_factory = _workload(dataset)
    cluster = ClusterSpec.ecs(NODES)
    crash_t = _crash_time(graph, model_factory, cluster)
    results = {}
    rows = []
    for name in ENGINES:
        schedule = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=crash_t, permanent=True)
        ])
        policy = RecoveryPolicy(checkpoint_every=2, strategy="shrink")
        report = run_chaos(
            name, graph, model_factory, cluster, schedule,
            epochs=EPOCHS, retry=RetryPolicy(), policy=policy,
        )
        results[name] = report
        event = report.recoveries[0]
        rows.append([
            name,
            f"{report.clean_epoch_s * 1e3:.2f}",
            f"{report.makespan_s * 1e3:.2f}",
            f"{event.recovery_s * 1e3:.2f}",
            f"{event.refetch_bytes / 1e3:.0f} KB",
            str(report.num_workers_final),
        ])
    print_table(
        f"Shrink-and-continue after a permanent crash ({dataset}, "
        f"{NODES} -> {NODES - 1} workers)",
        ["engine", "clean epoch ms", "makespan ms", "migration ms",
         "migrated", "workers"],
        rows,
    )
    paper_row(
        "expected: DepCache's survivors re-replicate the absorbed "
        "closures, so it migrates more bytes than DepComm (mirror "
        "re-registration only); Hybrid sits between"
    )
    return results


def test_elastic_shrink_beats_slow_provisioning(benchmark):
    results = run_provision_sweep()
    restart, shrink = results["restart"], results["shrink"]
    # (a) shrink never provisions, so its makespan ignores the delay ...
    assert max(shrink) - min(shrink) < 1e-9
    # ... while restart's grows monotonically with it.
    assert restart == sorted(restart)
    assert restart[-1] > restart[0]
    # (b) the headline: when provisioning is slow, shrink wins; when a
    # replacement is free, paying the migration does not pay off.
    assert shrink[-1] < restart[-1]
    assert restart[0] < shrink[0]

    graph, model_factory = _workload()
    benchmark(lambda: run_chaos(
        "hybrid", graph, model_factory, ClusterSpec.ecs(NODES),
        FaultSchedule([
            WorkerCrashFault(worker=1, at_time=1e-5, permanent=True)
        ]),
        epochs=1,
        policy=RecoveryPolicy(checkpoint_every=1, strategy="shrink"),
    ))


def test_elastic_depcache_pays_more_to_shrink(benchmark):
    results = run_churn_comparison()
    for name, report in results.items():
        # Exactly one shrink, and the cluster really got smaller.
        assert len(report.recoveries) == 1, name
        event = report.recoveries[0]
        assert event.strategy == "shrink"
        assert event.num_workers_after == NODES - 1
        assert report.num_workers_final == NODES - 1
        assert event.recovery_s > 0
        assert event.refetch_bytes > 0
    # The churn asymmetry: replicated closures cost more to rebuild
    # than mirror registrations.
    assert (
        results["depcache"].recoveries[0].refetch_bytes
        > results["depcomm"].recoveries[0].refetch_bytes
    )

    graph, model_factory = _workload()
    benchmark(lambda: run_chaos(
        "depcomm", graph, model_factory, ClusterSpec.ecs(NODES),
        FaultSchedule([
            WorkerCrashFault(worker=1, at_time=1e-5, permanent=True)
        ]),
        epochs=1,
        policy=RecoveryPolicy(checkpoint_every=1, strategy="shrink"),
    ))


if __name__ == "__main__":
    json_path = parse_json_flag(__doc__.splitlines()[0])
    sweep = run_provision_sweep()
    churn = run_churn_comparison()
    write_json(json_path, {
        "provision_sweep": sweep,
        "churn": {
            name: {
                "makespan_s": r.makespan_s,
                "migration_s": r.recoveries[0].recovery_s,
                "migrated_bytes": r.recoveries[0].refetch_bytes,
            }
            for name, r in churn.items()
        },
    })
