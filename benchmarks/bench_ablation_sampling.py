"""Ablation: DistDGL-style sampling fanouts and batch sizes.

The paper fixes DistDGL at a (10, 25) fanout.  This ablation sweeps the
fanout and batch size on the DistDGL-like engine and reports the
accuracy/time tradeoff sampling buys: larger fanouts approach the
full-batch ceiling but pay more per epoch; tiny fanouts are fast and
inaccurate.
"""

from common import build_engine, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.training.trainer import DistributedTrainer

SCALE = 0.4
EPOCHS = 20


def train_sampler(fanouts, batch_size, seed=1):
    engine = build_engine(
        "distdgl", "reddit", cluster=ClusterSpec.ecs(4),
        comm=CommOptions.none(), scale=SCALE, seed=seed,
        fanouts=fanouts, batch_size=batch_size,
    )
    trainer = DistributedTrainer(engine, lr=0.01)
    history = trainer.train(epochs=EPOCHS, eval_every=EPOCHS)
    return history.best_accuracy(), history.avg_epoch_time_s


def run_experiment():
    rows = []
    results = {}
    for fanouts in [(2, 2), (5, 10), (10, 25), (25, 50)]:
        acc, epoch_s = train_sampler(fanouts, batch_size=64)
        results[fanouts] = (acc, epoch_s)
        rows.append([
            str(fanouts), "64", f"{acc * 100:.1f}%", f"{epoch_s * 1e3:.2f}",
        ])
    for batch in [16, 64, 256]:
        acc, epoch_s = train_sampler((10, 25), batch_size=batch)
        results[("batch", batch)] = (acc, epoch_s)
        rows.append([
            "(10, 25)", str(batch), f"{acc * 100:.1f}%", f"{epoch_s * 1e3:.2f}",
        ])
    # Full-batch reference.
    full = build_engine(
        "hybrid", "reddit", cluster=ClusterSpec.ecs(4),
        comm=CommOptions.all(), scale=SCALE, seed=1,
    )
    trainer = DistributedTrainer(full, lr=0.01)
    history = trainer.train(epochs=EPOCHS, eval_every=EPOCHS)
    results["full"] = (history.best_accuracy(), history.avg_epoch_time_s)
    rows.append([
        "full batch", "-", f"{history.best_accuracy() * 100:.1f}%",
        f"{history.avg_epoch_time_s * 1e3:.2f}",
    ])
    print_table(
        f"Ablation: sampling fanout / batch size (Reddit scale {SCALE}, "
        f"4 nodes, {EPOCHS} epochs)",
        ["fanouts", "batch", "best accuracy", "epoch ms"],
        rows,
    )
    paper_row("sampling trades accuracy for redundancy reduction; the "
              "paper fixes (10, 25)")
    return results


def test_ablation_sampling(benchmark):
    results = run_experiment()
    full_acc = results["full"][0]
    # Starved fanouts lose accuracy vs full batch.
    assert results[(2, 2)][0] < full_acc
    # Richer fanouts close (most of) the gap.
    assert results[(25, 50)][0] >= results[(2, 2)][0]
    # ...but cost more per epoch than starved ones.
    assert results[(25, 50)][1] > results[(2, 2)][1]
    benchmark(lambda: None)


if __name__ == "__main__":
    run_experiment()
