"""The overlap-exchange program pass on a comm-bound cluster.

The :class:`~repro.execution.passes.OverlapExchangePass` folds each
worker's VertexForward (dense) time into the idle slack of the layer's
chunked exchange window (paper Section 5.4).  This harness measures the
charged-epoch gain on a 4-worker *comm-bound* configuration: a
bandwidth-starved 800 Mbps interconnect in front of devices whose
sparse kernels and PCIe are fast, so the exchange window -- not
compute -- dominates each layer and has genuine idle slack to fill.

The R+L comm options are used without P: the P optimization pipelines
chunk compute into the same window the pass wants to fill, so the two
compete for the same slack; the pass earns its keep exactly where P's
chunk pipelining has nothing left to hide (single-chunk compute,
dense tails).  Context rows show the pass alongside Hybrid and the
stock ECS cluster, where the headline gain shrinks as expected.

Headline shape: >= 10% lower charged epoch time with the pass on.
"""

from common import fmt_time, parse_json_flag, print_table, write_json
from repro.cluster.device import DeviceProfile
from repro.cluster.network import NetworkProfile
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.graph import generators
from repro.training.prep import prepare_graph

NUM_WORKERS = 4

# Comm-bound testbed: ~800 Mbps Ethernet (the starved end of the
# paper's motivation: "distributed GNN training is communication
# bound") in front of a device whose sparse/PCIe paths are fast enough
# that the exchange window is pure wire time.
STARVED_NETWORK = NetworkProfile(
    name="eth-800m", bytes_per_s=1.0e8, latency_s=5.0e-6
)
BENCH_DEVICE = DeviceProfile(
    name="bench-gpu",
    flops_per_s=6.0e9,
    sparse_flops_per_s=1.0e12,
    kernel_launch_s=1.0e-6,
    pcie_bytes_per_s=1.0e11,
    memory_bytes=64 * 1024 * 1024,
    cpu_flops_per_s=1.0e11,
)

# R+L only: see module docstring.
COMM = CommOptions(ring=True, lock_free=True, overlap=False)


def _graph(num_vertices=6400, avg_degree=3.0):
    g = generators.community(num_vertices, 4, avg_degree=avg_degree, seed=3)
    generators.attach_features(g, 32, 4, seed=4, class_signal=2.0)
    return prepare_graph(g, "gcn")


def _epoch_time(engine_name, cluster, overlap_pass, num_layers=4):
    graph = _graph()
    model = GNNModel.gcn(
        graph.feature_dim, 128, graph.num_classes,
        num_layers=num_layers, seed=2,
    )
    engine = make_engine(
        engine_name, graph, model, cluster,
        comm=COMM, overlap_pass=overlap_pass, record_timeline=False,
    )
    return engine.charge_epoch()


def run_experiment():
    starved = ClusterSpec(
        NUM_WORKERS, device=BENCH_DEVICE, network=STARVED_NETWORK,
        name="comm-bound",
    )
    ecs = ClusterSpec.ecs(NUM_WORKERS)
    rows = []
    results = {}
    for label, engine_name, cluster in [
        ("DepComm / comm-bound", "depcomm", starved),
        ("Hybrid / comm-bound", "hybrid", starved),
        ("DepComm / stock ECS", "depcomm", ecs),
    ]:
        off = _epoch_time(engine_name, cluster, overlap_pass=False)
        on = _epoch_time(engine_name, cluster, overlap_pass=True)
        gain = (off - on) / off
        results[label] = {"off_s": off, "on_s": on, "gain": gain}
        rows.append([
            label, fmt_time(off), fmt_time(on), f"{gain * 100:.1f}%",
        ])
    print_table(
        "Overlap-exchange pass: charged epoch time, pass off vs on "
        f"(GCN-4L, {NUM_WORKERS} workers, R+L)",
        ["configuration", "off (ms)", "on (ms)", "gain"],
        rows,
    )
    return results


def test_overlap_pass_gain(benchmark):
    results = run_experiment()
    headline = results["DepComm / comm-bound"]
    # The acceptance bar: >= 10% lower charged epoch time on the
    # comm-bound 4-worker configuration.
    assert headline["gain"] >= 0.10, headline
    # The pass never makes any configuration slower.
    for label, r in results.items():
        assert r["on_s"] <= r["off_s"] + 1e-12, label
    benchmark(lambda: _epoch_time("depcomm", ClusterSpec(
        NUM_WORKERS, device=BENCH_DEVICE, network=STARVED_NETWORK,
        name="comm-bound",
    ), overlap_pass=True))


if __name__ == "__main__":
    json_path = parse_json_flag(__doc__.splitlines()[0])
    results = run_experiment()
    if json_path:
        write_json(json_path, results)
