"""Chaos resilience: engine degradation under faults, crash recovery.

Not a paper figure -- the paper evaluates on a healthy cluster -- but
the natural stress test of its central trade-off.  Two experiments:

1. **Straggler sweep**: one worker's host CPU (which drives packing and
   the MPI-style comm stack) is progressively slowed.  DepComm routes
   every dependency through that host, so it degrades the most;
   DepCache only feels the modest GPU slowdown; Hybrid sits between.
2. **Mid-training crash**: a worker dies mid-run, the failure detector
   fires at the next BSP barrier, and training rolls back to the last
   checkpoint.  Recovery is visible on the modeled timeline, and
   DepCache pays a bigger re-provisioning bill (its replacement must
   re-materialise the cached L-hop closures) than DepComm.
"""

from common import paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.graph.datasets import load_dataset, spec_of
from repro.resilience import (
    FaultSchedule,
    RecoveryPolicy,
    RetryPolicy,
    StragglerFault,
    WorkerCrashFault,
    run_chaos,
)
from repro.training.prep import prepare_graph

ENGINES = ["depcache", "depcomm", "hybrid"]
DATASET = "google"
SCALE = 0.1
NODES = 4
EPOCHS = 4
CPU_FACTORS = [2.0, 4.0, 8.0]


def _workload(dataset: str = DATASET, scale: float = SCALE):
    graph = prepare_graph(load_dataset(dataset, scale=scale), "gcn")
    spec = spec_of(dataset)

    def model_factory():
        return GNNModel.build(
            "gcn", graph.feature_dim, spec.hidden_dim, graph.num_classes,
            seed=1,
        )

    return graph, model_factory


def run_straggler_sweep(dataset: str = DATASET):
    graph, model_factory = _workload(dataset)
    cluster = ClusterSpec.ecs(NODES)
    degradation = {name: [] for name in ENGINES}
    rows = []
    for cpu_factor in CPU_FACTORS:
        row = [f"{cpu_factor:.0f}x"]
        for name in ENGINES:
            schedule = FaultSchedule([
                StragglerFault(worker=0, gpu_factor=1.5, cpu_factor=cpu_factor)
            ])
            report = run_chaos(
                name, graph, model_factory, cluster, schedule, epochs=EPOCHS
            )
            degradation[name].append(report.degradation)
            row.append(f"{report.degradation:.2f}x")
        rows.append(row)
    print_table(
        f"Straggler sweep: host-CPU slowdown on 1 of {NODES} workers "
        f"(GCN on {dataset}, epoch-time degradation)",
        ["cpu slowdown"] + ENGINES,
        rows,
    )
    paper_row(
        "expected: DepComm (comm-heavy) degrades most, DepCache "
        "(compute-heavy, ~zero comm) least, Hybrid between"
    )
    return degradation


def run_crash_recovery(dataset: str = DATASET):
    graph, model_factory = _workload(dataset)
    cluster = ClusterSpec.ecs(NODES)
    # Crash worker 1 around epoch ~2.5 of whichever engine runs.
    from repro.engines import make_engine

    crash_t = make_engine(
        "depcomm", graph, model_factory(), cluster
    ).charge_epoch() * 2.5
    policy = RecoveryPolicy(checkpoint_every=2)
    results = {}
    rows = []
    for name in ENGINES:
        schedule = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=crash_t)
        ])
        report = run_chaos(
            name, graph, model_factory, cluster, schedule,
            epochs=EPOCHS, retry=RetryPolicy(), policy=policy,
        )
        results[name] = report
        event = report.recoveries[0] if report.recoveries else None
        rows.append([
            name,
            f"{report.clean_epoch_s * 1e3:.2f}",
            f"{report.makespan_s * 1e3:.2f}",
            str(len(report.recoveries)),
            f"{report.total_recovery_s * 1e3:.2f}" if event else "-",
            f"{event.refetch_bytes / 1e3:.0f} KB" if event else "-",
            f"epoch {event.rolled_back_to_epoch}" if event else "-",
        ])
    print_table(
        f"Mid-training crash (worker 1 at t={crash_t * 1e3:.2f} ms, "
        f"checkpoint every {policy.checkpoint_every} epochs)",
        ["engine", "clean epoch ms", "makespan ms", "recoveries",
         "recovery ms", "refetch", "rolled back to"],
        rows,
    )
    paper_row(
        "expected: every engine recovers via rollback-restart; DepCache "
        "re-fetches the most state (cached closures + replicated adjacency)"
    )
    return results


def test_chaos_straggler_degrades_depcomm_most(benchmark):
    degradation = run_straggler_sweep()
    for i, cpu_factor in enumerate(CPU_FACTORS):
        # (a) a straggling host hurts DepComm more than DepCache.
        assert degradation["depcomm"][i] > degradation["depcache"][i], (
            f"at cpu_factor={cpu_factor}: depcomm "
            f"{degradation['depcomm'][i]:.2f}x should exceed depcache "
            f"{degradation['depcache'][i]:.2f}x"
        )
        # Everyone degrades at least a little (barrier waits).
        assert degradation["depcache"][i] > 1.0
    # Degradation grows with fault intensity for the comm-bound engine.
    assert degradation["depcomm"] == sorted(degradation["depcomm"])

    graph, model_factory = _workload()
    benchmark(lambda: run_chaos(
        "hybrid", graph, model_factory, ClusterSpec.ecs(NODES),
        FaultSchedule([StragglerFault(worker=0, gpu_factor=2.0)]),
        epochs=1,
    ))


def test_chaos_crash_recovers_from_checkpoint(benchmark):
    results = run_crash_recovery()
    for name, report in results.items():
        # (b) the crash is detected and recovered exactly once ...
        assert len(report.recoveries) == 1, name
        event = report.recoveries[0]
        # ... with the recovery stall charged to the modeled timeline.
        assert event.recovery_s > 0
        assert report.makespan_s > report.clean_epoch_s * EPOCHS
        assert event.rolled_back_to_epoch == 2
        assert event.worker == 1
    # DepCache's replacement must rebuild cached closures; DepComm's
    # only re-registers mirrors -- the churn side of the trade-off.
    assert (
        results["depcache"].recoveries[0].refetch_bytes
        > results["depcomm"].recoveries[0].refetch_bytes
    )

    graph, model_factory = _workload()
    benchmark(lambda: run_chaos(
        "depcomm", graph, model_factory, ClusterSpec.ecs(NODES),
        FaultSchedule([WorkerCrashFault(worker=1, at_time=1e-5)]),
        epochs=1, policy=RecoveryPolicy(checkpoint_every=1),
    ))


if __name__ == "__main__":
    run_straggler_sweep()
    run_crash_recovery()
