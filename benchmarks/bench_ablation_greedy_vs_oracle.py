"""Ablation: Algorithm 4's greedy vs the exhaustive oracle.

Section 3 notes the optimal dependency split is NP-hard and proposes a
greedy heuristic.  On tiny instances the optimum is enumerable; this
ablation measures the greedy's optimality gap under the Eq.-3 cost
model across random small graphs.  Expectation: the gap is small (the
lazy-greedy structure with V_rep re-measurement is near-optimal when
subtree overlaps dominate).
"""

import numpy as np

from common import paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.costmodel.oracle import greedy_cost, oracle_partition
from repro.costmodel.partitioner import partition_dependencies
from repro.costmodel.probe import probe_constants
from repro.graph import generators
from repro.partition.chunk import chunk_partition

INSTANCES = 12


def run_experiment():
    model = GNNModel.gcn(8, 4, 2)
    constants = probe_constants(ClusterSpec.ecs(3), model)
    rows = []
    gaps = []
    for seed in range(INSTANCES):
        g = generators.locality_graph(
            24, 48, locality_width=0.1, global_fraction=0.3, seed=seed
        )
        partitioning = chunk_partition(g, 3)
        for worker in range(3):
            try:
                oracle = oracle_partition(
                    g, partitioning, worker, model.dims(), constants
                )
            except ValueError:
                continue
            greedy = partition_dependencies(
                g, partitioning, worker, model.dims(), constants
            )
            cost = greedy_cost(
                g, partitioning, worker, model.dims(), constants,
                greedy.cached,
            )
            gap = cost / oracle.total_cost_s if oracle.total_cost_s else 1.0
            gaps.append(gap)
            rows.append([
                f"seed {seed} / w{worker}",
                f"{oracle.total_cost_s * 1e6:.2f}",
                f"{cost * 1e6:.2f}",
                f"{gap:.3f}x",
                str(oracle.subsets_evaluated),
            ])
    print_table(
        "Ablation: greedy (Algorithm 4) vs exhaustive oracle, Eq.-3 cost",
        ["instance", "oracle (us)", "greedy (us)", "gap", "subsets"],
        rows,
    )
    print(f"\n    mean gap {np.mean(gaps):.3f}x, worst {np.max(gaps):.3f}x "
          f"over {len(gaps)} instances")
    paper_row("the paper offers no optimality bound; this quantifies one")
    return gaps


def test_ablation_greedy_vs_oracle(benchmark):
    gaps = run_experiment()
    assert len(gaps) >= 10
    assert all(g >= 1.0 - 1e-9 for g in gaps)  # oracle is a lower bound
    assert float(np.mean(gaps)) < 1.15
    assert float(np.max(gaps)) < 1.5
    benchmark(lambda: None)


if __name__ == "__main__":
    run_experiment()
