"""Figure 2: DepCache vs DepComm (vanilla engines).

(a) four graph inputs on the ECS cluster (2-layer GCN, hidden 256);
(b) hidden-layer sweep on Google;
(c) Google on the ECS vs IBV clusters.

Paper shapes: DepCache wins Google (1.23X) and LiveJournal (1.03X);
DepComm wins Pokec (1.54X) and Reddit (7.76X); hidden 640 favours
DepCache (1.43X) while hidden 64 favours DepComm (1.16X); the IBV
cluster's fast network flips Google to DepComm (1.41X).
"""

from common import epoch_time, fmt_ratio, fmt_time, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

RAW = CommOptions.none()  # "vanilla versions ... without advanced optimizations"

PAPER_2A = {"google": 0.81, "livejournal": 0.97, "pokec": 1.54, "reddit": 7.76}


def run_fig2a():
    rows = []
    ratios = {}
    for name in PAPER_2A:
        cache = epoch_time("depcache", name, cluster=ClusterSpec.ecs(8), comm=RAW)
        comm = epoch_time("depcomm", name, cluster=ClusterSpec.ecs(8), comm=RAW)
        ratios[name] = cache / comm
        rows.append(
            [name, fmt_time(cache), fmt_time(comm),
             fmt_ratio(ratios[name]), f"{PAPER_2A[name]:.2f}x"]
        )
    print_table(
        "Figure 2(a): graph inputs (8-node ECS, GCN, hidden=256)",
        ["dataset", "DepCache ms", "DepComm ms", "cache/comm", "paper"],
        rows,
    )
    return ratios


def run_fig2b():
    rows = []
    ratios = {}
    for hidden in [64, 256, 640]:
        cache = epoch_time(
            "depcache", "google", cluster=ClusterSpec.ecs(8), comm=RAW,
            hidden=hidden,
        )
        comm = epoch_time(
            "depcomm", "google", cluster=ClusterSpec.ecs(8), comm=RAW,
            hidden=hidden,
        )
        ratios[hidden] = cache / comm
        rows.append([str(hidden), fmt_time(cache), fmt_time(comm),
                     fmt_ratio(ratios[hidden])])
    print_table(
        "Figure 2(b): hidden-layer size (Google, 8-node ECS)",
        ["hidden", "DepCache ms", "DepComm ms", "cache/comm"],
        rows,
    )
    paper_row("64 -> 1.16x (comm wins), 256 -> 0.81x, 640 -> 0.70x (cache wins)")
    return ratios


def run_fig2c():
    rows = []
    ratios = {}
    for cluster in [ClusterSpec.ecs(8), ClusterSpec.ibv(8)]:
        cache = epoch_time("depcache", "google", cluster=cluster, comm=RAW)
        comm = epoch_time("depcomm", "google", cluster=cluster, comm=RAW)
        ratios[cluster.name] = cache / comm
        rows.append([cluster.name, fmt_time(cache), fmt_time(comm),
                     fmt_ratio(ratios[cluster.name])])
    print_table(
        "Figure 2(c): cluster environments (Google, GCN, hidden=256)",
        ["cluster", "DepCache ms", "DepComm ms", "cache/comm"],
        rows,
    )
    paper_row("ECS -> cache wins 1.23x; IBV -> comm wins 1.41x")
    return ratios


def test_fig2a_graph_inputs(benchmark):
    ratios = run_fig2a()
    # Shapes: cache wins google & ~ties livejournal; comm wins pokec;
    # comm wins reddit by a large factor.
    assert ratios["google"] < 1.0
    assert ratios["livejournal"] < 1.3
    assert ratios["pokec"] > 1.2
    assert ratios["reddit"] > 2.5
    assert ratios["reddit"] > ratios["pokec"]
    benchmark(
        lambda: epoch_time("depcomm", "google", cluster=ClusterSpec.ecs(8), comm=RAW)
    )


def test_fig2b_hidden_sweep(benchmark):
    ratios = run_fig2b()
    assert ratios[640] < ratios[256] < ratios[64]  # wider -> cache-friendlier
    assert ratios[640] < 1.0
    benchmark(
        lambda: epoch_time(
            "depcache", "google", cluster=ClusterSpec.ecs(8), comm=RAW, hidden=64
        )
    )


def test_fig2c_cluster_environments(benchmark):
    ratios = run_fig2c()
    assert ratios["ECS"] < 1.0  # cache wins on slow network
    assert ratios["IBV"] > 1.0  # fast network flips to comm
    benchmark(
        lambda: epoch_time("depcomm", "google", cluster=ClusterSpec.ibv(8), comm=RAW)
    )


if __name__ == "__main__":
    run_fig2a()
    run_fig2b()
    run_fig2c()
