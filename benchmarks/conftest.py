"""Benchmarks are discovered as pytest tests; keep module imports local."""

import sys
from pathlib import Path

# Make `import common` work when pytest is launched from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
