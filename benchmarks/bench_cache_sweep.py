"""HybridCache: staleness-bounded caching vs pure DepComm.

Real numerical training on a scaled-down Pubmed: pure DepComm fetches
every remote dependency every epoch; the staleness-bounded historical
cache re-fetches only every ``tau`` epochs, amortizing the per-epoch
communication volume to roughly ``1/tau`` of the baseline at the price
of bounded-staleness inputs.

Headline shapes this module asserts:

- ``tau = 0`` is bit-identical to the cache-free baseline (same comm
  volume, same accuracy) -- the determinism contract;
- some ``(tau, capacity)`` point cuts per-epoch comm volume by >= 30%
  while keeping accuracy within 1% of the baseline;
- comm volume is monotonically non-increasing in ``tau``.
"""

import numpy as np

from common import paper_row, parse_json_flag, print_table, write_json
from repro.cache.sweep import run_cache_sweep
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.graph.datasets import load_dataset, spec_of
from repro.training.prep import prepare_graph

DATASET = "pubmed"
SCALE = 0.5
HIDDEN = 32
NODES = 4
EPOCHS = 20
TAUS = (0.0, 2.0, 4.0, 8.0)


def run_experiment(seed=1):
    graph = prepare_graph(load_dataset(DATASET, scale=SCALE), "gcn")
    spec = spec_of(DATASET)

    def model_factory():
        return GNNModel.build(
            "gcn", graph.feature_dim, HIDDEN, graph.num_classes, seed=seed,
        )

    result = run_cache_sweep(
        graph, model_factory, ClusterSpec.ecs(NODES),
        taus=TAUS, epochs=EPOCHS, engine_name="depcomm",
    )
    rows = [[
        "baseline", f"{result.baseline_comm_bytes / 1e3:.1f}", "0.0%",
        f"{result.baseline_accuracy * 100:.2f}%", "-", "-",
    ]]
    for p in result.points:
        rows.append([
            f"tau={p.tau:g}",
            f"{p.avg_comm_bytes / 1e3:.1f}",
            f"{p.comm_reduction * 100:.1f}%",
            f"{p.accuracy * 100:.2f}%",
            f"{p.accuracy_delta * 100:+.2f}%",
            f"{p.hit_rate() * 100:.0f}%",
        ])
    print_table(
        f"HybridCache sweep: DepComm + historical cache on {DATASET} "
        f"(scale {SCALE}, {NODES} workers, {EPOCHS} epochs)",
        ["point", "KB/epoch", "comm saved", "accuracy", "delta", "hit rate"],
        rows,
    )
    paper_row(
        "historical-embedding caching trades bounded staleness for "
        "amortized communication (cf. Kaler et al.; not in NeutronStar)"
    )
    return result


def test_cache_sweep(benchmark):
    result = run_experiment()
    by_tau = {p.tau: p for p in result.points}

    # tau=0 refreshes every epoch: bit-identical to the cache-free run.
    assert by_tau[0.0].avg_comm_bytes == result.baseline_comm_bytes
    assert by_tau[0.0].accuracy == result.baseline_accuracy

    # Comm volume is monotonically non-increasing in tau.
    volumes = [by_tau[t].avg_comm_bytes for t in sorted(by_tau)]
    assert all(a >= b - 1e-9 for a, b in zip(volumes, volumes[1:]))

    # Headline: >= 30% comm saved with accuracy within 1% somewhere.
    best = result.best(accuracy_tolerance=0.01)
    assert best is not None
    assert best.comm_reduction >= 0.30, best
    assert best.accuracy_delta >= -0.01, best

    benchmark(lambda: np.sum(volumes))


if __name__ == "__main__":
    json_path = parse_json_flag("HybridCache tau sweep vs pure DepComm")
    write_json(json_path, run_experiment().to_dict())
