"""Online serving: micro-batch dedup, staleness sweep, determinism.

Serving-side evaluation of the hybrid dependency machinery (not a
figure of the paper -- NeutronStar trains; this harness asks what its
cost model and caching buy at inference time).  A dense synthetic
graph under a Zipfian, saturating request stream is the regime where
micro-batching pays: concurrent requests' k-hop closures overlap
heavily, so one forward over the union frontier replaces many
overlapping per-request recomputes -- the serving analogue of the
paper's redundancy elimination.

Headline shapes this module asserts:

- micro-batched serving sustains >= 2x the throughput of one-request-
  at-a-time serving, with bit-identical predictions (batching moves
  work, never answers);
- raising the staleness bound ``tau`` monotonically reduces the
  cross-worker traffic of remote (DepComm-style) serving, trading
  reported staleness for bytes, with p99 latency reported per point;
- the latency ledger is a pure function of the seeds: serving the same
  workload twice gives bit-identical ledgers.
"""

from common import paper_row, parse_json_flag, print_table, write_json
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.graph import generators
from repro.partition.hashing import hash_partition
from repro.serving import (
    InferenceServer,
    ServingConfig,
    WorkloadConfig,
    generate_workload,
)

NUM_VERTICES = 500
NUM_EDGES = 4000
NODES = 4
NUM_REQUESTS = 400
RATE_RPS = 1_000_000.0  # saturating: arrivals never gate throughput
SWEEP_RATE_RPS = 2000.0  # spread arrivals so tau actually discriminates
ZIPF = 1.1
BATCH_WINDOW_S = 0.002
MAX_BATCH = 64
TAUS = (0.0, 0.01, 0.05, 0.2)


def _setup():
    graph = generators.erdos_renyi(NUM_VERTICES, NUM_EDGES, seed=3)
    generators.attach_features(graph, 16, 7, seed=4)
    model = GNNModel.build(
        "gcn", graph.feature_dim, 32, graph.num_classes,
        num_layers=3, seed=1,
    )
    cluster = ClusterSpec.ecs(NODES)
    partitioning = hash_partition(graph, NODES)
    return graph, model, cluster, partitioning


def _workload(num_vertices, rate_rps):
    return generate_workload(
        WorkloadConfig(
            num_requests=NUM_REQUESTS, rate_rps=rate_rps,
            zipf_exponent=ZIPF, seed=5,
        ),
        num_vertices,
    )


def _serve(parts, workload, window_s, max_batch, tau_s, mode):
    graph, model, cluster, partitioning = parts
    server = InferenceServer(
        graph, model, cluster, partitioning,
        config=ServingConfig(
            batch_window_s=window_s, max_batch=max_batch,
            tau_s=tau_s, mode=mode,
        ),
        record_timeline=False,
    )
    return server.serve(workload)


def run_experiment():
    parts = _setup()
    saturating = _workload(NUM_VERTICES, RATE_RPS)
    spread = _workload(NUM_VERTICES, SWEEP_RATE_RPS)

    # -- micro-batching vs one request at a time -----------------------
    unbatched = _serve(parts, saturating, 0.0, 1, 0.0, "local")
    batched = _serve(parts, saturating, BATCH_WINDOW_S, MAX_BATCH, 0.0, "local")
    speedup = (
        batched.ledger.throughput_rps() / unbatched.ledger.throughput_rps()
    )
    identical = batched.predictions == unbatched.predictions
    print_table(
        f"micro-batching on erdos_renyi({NUM_VERTICES}, {NUM_EDGES}), "
        f"3-layer GCN, {NODES} workers, {NUM_REQUESTS} reqs (saturating)",
        ["serving", "batches", "rps", "p99 ms", "speedup"],
        [
            ["unbatched", str(unbatched.num_batches),
             f"{unbatched.ledger.throughput_rps():.0f}",
             f"{unbatched.ledger.p99_s * 1e3:.2f}", "-"],
            ["batched", str(batched.num_batches),
             f"{batched.ledger.throughput_rps():.0f}",
             f"{batched.ledger.p99_s * 1e3:.2f}", f"{speedup:.2f}x"],
        ],
    )
    print(f"predictions identical: {identical}")

    # -- staleness bound vs remote-serving traffic ---------------------
    sweep = []
    rows = []
    for tau in TAUS:
        result = _serve(parts, spread, BATCH_WINDOW_S, MAX_BATCH, tau, "remote")
        ledger = result.ledger
        sweep.append({
            "tau_s": tau,
            "comm_bytes": ledger.total_comm_bytes,
            "p99_ms": ledger.p99_s * 1e3,
            "mean_staleness_s": ledger.mean_staleness_s(),
            "cache_hits": result.cache.counters.hits,
        })
        rows.append([
            f"{tau:g}",
            f"{ledger.total_comm_bytes / 1e3:.1f}",
            f"{ledger.p99_s * 1e3:.2f}",
            f"{ledger.mean_staleness_s() * 1e3:.2f}",
            str(result.cache.counters.hits),
        ])
    print_table(
        "staleness bound vs remote-serving traffic",
        ["tau s", "comm KB", "p99 ms", "staleness ms", "cache hits"],
        rows,
    )

    # -- determinism ---------------------------------------------------
    a = _serve(parts, spread, BATCH_WINDOW_S, MAX_BATCH, TAUS[-1], "remote")
    b = _serve(parts, spread, BATCH_WINDOW_S, MAX_BATCH, TAUS[-1], "remote")
    deterministic = a.ledger.to_dict() == b.ledger.to_dict()
    print(f"ledger bit-identical across reruns: {deterministic}")

    paper_row(
        "serving-side redundancy elimination: micro-batched union-closure "
        "forwards and staleness-bounded caching reuse the training-time "
        "hybrid dependency machinery (not a NeutronStar experiment)"
    )
    return {
        "unbatched_rps": unbatched.ledger.throughput_rps(),
        "batched_rps": batched.ledger.throughput_rps(),
        "batching_speedup": speedup,
        "predictions_identical": identical,
        "tau_sweep": sweep,
        "deterministic": deterministic,
    }


def test_serving(benchmark):
    result = run_experiment()

    # Micro-batching is the headline: >= 2x at identical answers.
    assert result["batching_speedup"] >= 2.0, result["batching_speedup"]
    assert result["predictions_identical"]

    # Raising tau only ever removes traffic, and actually removes some.
    volumes = [p["comm_bytes"] for p in result["tau_sweep"]]
    assert all(a >= b - 1e-9 for a, b in zip(volumes, volumes[1:]))
    assert volumes[-1] < volumes[0]
    # The traded quantity is visible: staleness grows from zero.
    assert result["tau_sweep"][0]["mean_staleness_s"] == 0.0
    assert result["tau_sweep"][-1]["mean_staleness_s"] > 0.0

    # Same seed, same ledger -- bit for bit.
    assert result["deterministic"]

    benchmark(lambda: result["batching_speedup"])


if __name__ == "__main__":
    json_path = parse_json_flag("online serving benchmark")
    write_json(json_path, run_experiment())
