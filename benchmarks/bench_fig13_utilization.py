"""Figure 13: GPU / CPU / network utilization (GCN on Orkut).

Each system trains for a window of epochs with timeline recording on;
we report average busy fractions and the received-bytes trace.

Paper shapes (16-node ECS, ROC at 4): DepCache ~full GPU load (99.4%)
with no network traffic; DistDGL low GPU (11.3%) because sampling
bottlenecks; ROC low GPU (10.2%); DepComm (39.9%) and NeutronStar
(60.5%) in between thanks to overlap; DistDGL uses the most bandwidth;
NeutronStar smooths the bandwidth curve relative to ROC.
"""

from common import build_engine, paper_row, print_table
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions

SYSTEMS = [
    ("DistDGL", "distdgl", CommOptions.none(), 16),
    ("ROC", "roc", CommOptions.none(), 4),
    ("DepCache", "depcache", CommOptions.none(), 16),
    ("DepComm", "depcomm", CommOptions.all(), 16),
    ("NeutronStar", "hybrid", CommOptions.all(), 16),
]

EPOCHS = 5


def run_experiment(dataset: str = "orkut"):
    results = {}
    rows = []
    for label, engine_name, comm, nodes in SYSTEMS:
        engine = build_engine(
            engine_name, dataset, cluster=ClusterSpec.ecs(nodes), comm=comm,
            record_timeline=True,
        )
        for _ in range(EPOCHS):
            engine.charge_epoch()
        summary = engine.timeline.utilization_summary()
        window = engine.timeline.makespan / 20
        net_trace = engine.timeline.bytes_per_window(window)
        smoothness = (
            net_trace.std() / net_trace.mean() if net_trace.mean() > 0 else 0.0
        )
        results[label] = {
            "gpu": summary["gpu"],
            "cpu": summary["cpu"],
            "net": summary["net_recv"],
            "bytes_per_s": float(net_trace.sum() / engine.timeline.makespan),
            "burstiness": smoothness,
        }
        rows.append([
            label,
            f"{summary['gpu'] * 100:.1f}%",
            f"{summary['cpu'] * 100:.1f}%",
            f"{results[label]['bytes_per_s'] / 1e6:.1f} MB/s",
            f"{smoothness:.2f}",
        ])
    print_table(
        f"Figure 13: utilization during GCN on {dataset} "
        "(avg over a 5-epoch window)",
        ["system", "GPU busy", "CPU busy", "net received", "burstiness (cv)"],
        rows,
    )
    paper_row(
        "GPU: DepCache 99.4% > NTS 60.5% > DepComm 39.9% > DistDGL 11.3%, "
        "ROC 10.2%; DepCache uses no network; DistDGL uses the most"
    )
    return results


def test_fig13_utilization(benchmark):
    results = run_experiment()
    # GPU ordering: DepCache busiest; NTS above DepComm (overlap);
    # DistDGL and ROC at the bottom.
    assert results["DepCache"]["gpu"] > results["NeutronStar"]["gpu"]
    assert results["NeutronStar"]["gpu"] >= results["DepComm"]["gpu"]
    assert results["DepCache"]["gpu"] > results["DistDGL"]["gpu"]
    # DepCache communicates (almost) nothing beyond the all-reduce.
    assert results["DepCache"]["bytes_per_s"] < results["DepComm"]["bytes_per_s"] / 5
    # DistDGL's sampling traffic is the heaviest.
    assert results["DistDGL"]["bytes_per_s"] > results["DepCache"]["bytes_per_s"]
    # Hybrid caching cuts NTS's bandwidth need below optimized DepComm's.
    assert (
        results["NeutronStar"]["bytes_per_s"] < results["DepComm"]["bytes_per_s"]
    )
    benchmark(
        lambda: build_engine(
            "hybrid", "orkut", cluster=ClusterSpec.ecs(16),
            comm=CommOptions.all(), record_timeline=True,
        ).charge_epoch()
    )


if __name__ == "__main__":
    run_experiment()
